//! Compiler configurations — the named points of the paper's evaluation.

use safara_analysis::cost::CostModel;
use safara_codegen::CodegenOptions;
use safara_gpusim::{DeviceConfig, SpillTarget};
use safara_opt::OptGoal;

/// Which scalar-replacement strategy runs (and how).
#[derive(Debug, Clone, PartialEq)]
pub enum SrStrategy {
    /// No scalar replacement.
    None,
    /// SAFARA with the iterative feedback loop and the given cost model.
    Safara {
        /// The candidate-ranking model (latency-aware or count-only).
        cost_model: CostModel,
        /// Disable the feedback loop: apply one unbounded round instead
        /// (an ablation of §III-B.2).
        feedback: bool,
    },
    /// Classical Carr–Kennedy: count-only moderation, inter-iteration
    /// reuse harvested on parallel loops (which are then sequentialized).
    CarrKennedy,
}

/// A complete compiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// Human-readable name (appears in reports and figures).
    pub name: &'static str,
    /// Back-end options (clause honoring, read-only cache, CSE, DCE).
    pub codegen: CodegenOptions,
    /// Scalar-replacement strategy.
    pub sr: SrStrategy,
    /// Per-thread hardware register cap the feedback loop targets
    /// (255 on Kepler).
    pub reg_cap: u32,
    /// Maximum feedback iterations (the paper's loop terminates when
    /// registers saturate; this is a safety bound).
    pub max_feedback_iters: u32,
    /// Unroll innermost sequential loops by this factor before scalar
    /// replacement (0/1 = off) — the paper's §VII future-work extension.
    pub unroll: u32,
    /// What the SAFARA feedback loop optimizes: the paper's
    /// register-saturating policy, or predicted throughput using the
    /// device occupancy model as a cost oracle.
    pub goal: OptGoal,
    /// Where register spills land (RegDem-style shared memory vs the
    /// hardware-default local memory).
    pub spill_target: SpillTarget,
    /// Run the equality-saturation phase (e-graph CSE / offset
    /// factoring / strength reduction / guarded narrowing) ahead of
    /// scalar replacement. Off by default; the driver re-validates the
    /// extracted program against the ptxas register model (or the
    /// occupancy oracle under [`OptGoal::MaxThroughput`]) and reverts
    /// any non-improvement, so turning it on can never regress.
    pub saturate: bool,
    /// Config-level `launch_bounds(T, B)` override applied to every
    /// kernel, exactly like compiling with `__launch_bounds__`: caps the
    /// register budget so `B` blocks of `T` threads stay resident. A
    /// region's own `launch_bounds` clause takes precedence per kernel.
    pub launch_bounds: Option<(u32, u32)>,
    /// The device whose occupancy rules drive the throughput goal, the
    /// `launch_bounds` cap arithmetic, and shared-spill capacity checks.
    pub device: DeviceConfig,
}

impl CompilerConfig {
    /// OpenUH baseline: competent codegen, clauses ignored, no SR.
    pub fn base() -> Self {
        CompilerConfig {
            name: "OpenUH(base)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::None,
            reg_cap: 255,
            max_feedback_iters: 8,
            unroll: 0,
            goal: OptGoal::MinRegisters,
            saturate: false,
            spill_target: SpillTarget::Local,
            launch_bounds: None,
            device: DeviceConfig::k20xm(),
        }
    }

    /// Baseline + SAFARA only (the paper's Fig. 7 configuration).
    pub fn safara_only() -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: true },
            ..Self::base()
        }
    }

    /// Baseline honoring only the `small` clause.
    pub fn small() -> Self {
        CompilerConfig {
            name: "OpenUH(+small)",
            codegen: CodegenOptions { honor_small: true, ..CodegenOptions::base() },
            ..Self::base()
        }
    }

    /// Baseline honoring `small` and `dim`.
    pub fn small_dim() -> Self {
        CompilerConfig {
            name: "OpenUH(+small+dim)",
            codegen: CodegenOptions::default(),
            ..Self::base()
        }
    }

    /// The full proposal: `small` + `dim` + SAFARA (Fig. 9's best bars).
    pub fn safara_clauses() -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA+small+dim)",
            codegen: CodegenOptions::default(),
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: true },
            ..Self::base()
        }
    }

    /// SAFARA + `small` only (the NAS benchmarks have no VLAs, so `dim`
    /// does not apply — §V-C).
    pub fn safara_small() -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA+small)",
            codegen: CodegenOptions { honor_small: true, ..CodegenOptions::base() },
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: true },
            ..Self::base()
        }
    }

    /// Classical Carr–Kennedy scalar replacement (the foil of §III-A).
    pub fn carr_kennedy() -> Self {
        CompilerConfig {
            name: "CarrKennedy",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::CarrKennedy,
            ..Self::base()
        }
    }

    /// The simulated PGI-like commercial comparator (see DESIGN.md for
    /// the substitution rationale).
    pub fn pgi_like() -> Self {
        CompilerConfig {
            name: "PGI(simulated)",
            codegen: CodegenOptions::pgi_like(),
            sr: SrStrategy::None,
            ..Self::base()
        }
    }

    /// Ablation: SAFARA ranking candidates by reference count only
    /// (the Carr–Kennedy CPU metric) instead of `count × latency`.
    pub fn safara_count_only() -> Self {
        CompilerConfig {
            name: "SAFARA(count-only)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::Safara { cost_model: CostModel::count_only(), feedback: true },
            ..Self::base()
        }
    }

    /// The §VII future-work extension: unroll innermost sequential loops
    /// before SAFARA, turning inter-iteration reuse into straight-line
    /// reuse.
    pub fn safara_unroll(factor: u32) -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA+clauses+unroll)",
            unroll: factor,
            ..Self::safara_clauses()
        }
    }

    /// Ablation: SAFARA without the iterative feedback loop (one round,
    /// unbounded budget).
    pub fn safara_no_feedback() -> Self {
        CompilerConfig {
            name: "SAFARA(no-feedback)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: false },
            ..Self::base()
        }
    }

    /// The occupancy-aware evaluation point: SAFARA whose feedback loop
    /// admits candidates through the device occupancy oracle instead of
    /// saturating the register count (ROADMAP item 2's tentpole).
    pub fn safara_throughput() -> Self {
        CompilerConfig {
            name: "SAFARA(throughput)",
            goal: OptGoal::MaxThroughput,
            ..Self::safara_only()
        }
    }

    /// The equality-saturation evaluation point: SAFARA preceded by the
    /// e-graph phase, so offset factoring / strength reduction /
    /// narrowing run before scalar replacement sees the region.
    pub fn safara_saturated() -> Self {
        CompilerConfig {
            name: "SAFARA(saturated)",
            saturate: true,
            ..Self::safara_only()
        }
    }

    /// The RegDem evaluation point (arXiv 1907.02894): SAFARA under a
    /// deliberately tight register cap so spilling happens, with the
    /// spills placed in shared memory instead of local. The cap of 40
    /// mirrors the paper's "high occupancy" operating point (40 regs ×
    /// 1280 regs/warp keeps 48+ warps resident at 128-thread blocks).
    pub fn safara_regdem() -> Self {
        CompilerConfig {
            name: "SAFARA(RegDem)",
            reg_cap: 40,
            spill_target: SpillTarget::Shared,
            ..Self::safara_only()
        }
    }

    /// The stable lookup keys services accept, one per named profile —
    /// see [`CompilerConfig::by_name`].
    pub const PROFILE_KEYS: [&'static str; 13] = [
        "base",
        "safara_only",
        "small",
        "small_dim",
        "safara_clauses",
        "safara_small",
        "carr_kennedy",
        "pgi_like",
        "safara_count_only",
        "safara_no_feedback",
        "safara_throughput",
        "safara_regdem",
        "safara_saturated",
    ];

    /// Start building a configuration from typed toggles — the
    /// replacement for stringly-typed [`CompilerConfig::by_name`]
    /// call sites. The builder starts at the OpenUH baseline; toggles
    /// compose, and combinations matching a named evaluation point keep
    /// that point's canonical name.
    pub fn builder() -> CompilerConfigBuilder {
        CompilerConfigBuilder::default()
    }

    /// Resolve a profile by wire-protocol key (case-insensitive, `-`
    /// treated as `_`; a few aliases accepted). `None` for unknown keys.
    ///
    /// Kept as a thin shim over [`CompilerConfig::builder`] so wire
    /// requests and bench binaries can still resolve names; new code
    /// should use the builder's typed toggles.
    #[deprecated(since = "0.1.0", note = "use CompilerConfig::builder() for typed toggles; \
                                          only wire-facing name resolution should live here")]
    pub fn by_name(key: &str) -> Option<CompilerConfig> {
        let k = key.trim().to_ascii_lowercase().replace('-', "_");
        let b = Self::builder();
        Some(match k.as_str() {
            "base" | "openuh" => b.build(),
            "safara" | "safara_only" => b.safara(true).build(),
            "small" => b.small(true).build(),
            "small_dim" => b.small(true).dim(true).build(),
            "safara_clauses" | "safara_small_dim" => b.safara(true).small(true).dim(true).build(),
            "safara_small" => b.safara(true).small(true).build(),
            "carr_kennedy" | "ck" => b.carr_kennedy(true).build(),
            "pgi" | "pgi_like" => Self::pgi_like(),
            "safara_count_only" => Self::safara_count_only(),
            "safara_no_feedback" => Self::safara_no_feedback(),
            "safara_throughput" => Self::safara_throughput(),
            "safara_regdem" | "regdem" => Self::safara_regdem(),
            "safara_saturated" | "saturated" => b.safara(true).saturate(true).build(),
            _ => return None,
        })
    }
}

/// Typed construction of a [`CompilerConfig`] (see
/// [`CompilerConfig::builder`]).
///
/// ```
/// use safara_core::CompilerConfig;
/// let cfg = CompilerConfig::builder().safara(true).small(true).dim(true).build();
/// assert_eq!(cfg, CompilerConfig::safara_clauses());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompilerConfigBuilder {
    safara: bool,
    carr_kennedy: bool,
    small: bool,
    dim: bool,
    unroll: u32,
    goal: OptGoal,
    saturate: bool,
    spill_target: SpillTarget,
    launch_bounds: Option<(u32, u32)>,
    reg_cap: Option<u32>,
}

impl CompilerConfigBuilder {
    /// Enable SAFARA scalar replacement with the iterative feedback
    /// loop. Mutually exclusive with [`CompilerConfigBuilder::carr_kennedy`]
    /// (the last one set wins).
    pub fn safara(mut self, on: bool) -> Self {
        self.safara = on;
        if on {
            self.carr_kennedy = false;
        }
        self
    }

    /// Enable classical Carr–Kennedy scalar replacement instead.
    pub fn carr_kennedy(mut self, on: bool) -> Self {
        self.carr_kennedy = on;
        if on {
            self.safara = false;
        }
        self
    }

    /// Honor `small` clauses (32-bit offset arithmetic).
    pub fn small(mut self, on: bool) -> Self {
        self.small = on;
        self
    }

    /// Honor `dim` groups (shared dope scalars).
    pub fn dim(mut self, on: bool) -> Self {
        self.dim = on;
        self
    }

    /// Unroll innermost sequential loops by `factor` before scalar
    /// replacement (0/1 = off).
    pub fn unroll(mut self, factor: u32) -> Self {
        self.unroll = factor;
        self
    }

    /// Set what the feedback loop optimizes (default:
    /// [`OptGoal::MinRegisters`], the paper's policy).
    pub fn goal(mut self, goal: OptGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Run the equality-saturation phase ahead of scalar replacement
    /// (default: off, keeping every existing profile byte-identical).
    pub fn saturate(mut self, on: bool) -> Self {
        self.saturate = on;
        self
    }

    /// Set where register spills land (default: [`SpillTarget::Local`]).
    pub fn spill_target(mut self, target: SpillTarget) -> Self {
        self.spill_target = target;
        self
    }

    /// Apply a `launch_bounds(T, B)`-style register cap to every kernel
    /// (a region's own `launch_bounds` clause still wins per kernel).
    pub fn launch_bounds(mut self, max_threads: u32, min_blocks: u32) -> Self {
        self.launch_bounds = Some((max_threads, min_blocks.max(1)));
        self
    }

    /// Override the per-thread register cap the feedback loop targets.
    /// Out-of-range values (< 4 or above the device maximum) are
    /// rejected at compile time with a typed error, not clamped.
    pub fn reg_cap(mut self, cap: u32) -> Self {
        self.reg_cap = Some(cap);
        self
    }

    /// Build the configuration. Toggle combinations that match a named
    /// evaluation point produce that exact config (same canonical
    /// `name`); any other combination is named `"custom"`.
    pub fn build(self) -> CompilerConfig {
        let base = match self {
            CompilerConfigBuilder { safara: false, carr_kennedy: false, small: false, dim: false, .. } => {
                CompilerConfig::base()
            }
            CompilerConfigBuilder { safara: true, small: false, dim: false, .. } => {
                CompilerConfig::safara_only()
            }
            CompilerConfigBuilder { safara: false, carr_kennedy: false, small: true, dim: false, .. } => {
                CompilerConfig::small()
            }
            CompilerConfigBuilder { safara: false, carr_kennedy: false, small: true, dim: true, .. } => {
                CompilerConfig::small_dim()
            }
            CompilerConfigBuilder { safara: true, small: true, dim: true, .. } => {
                CompilerConfig::safara_clauses()
            }
            CompilerConfigBuilder { safara: true, small: true, dim: false, .. } => {
                CompilerConfig::safara_small()
            }
            CompilerConfigBuilder { carr_kennedy: true, small: false, dim: false, .. } => {
                CompilerConfig::carr_kennedy()
            }
            _ => {
                // An off-menu combination: assemble it from the toggles.
                CompilerConfig {
                    name: "custom",
                    codegen: CodegenOptions {
                        honor_small: self.small,
                        honor_dim: self.dim,
                        ..CodegenOptions::base()
                    },
                    sr: if self.carr_kennedy {
                        SrStrategy::CarrKennedy
                    } else if self.safara {
                        SrStrategy::Safara { cost_model: CostModel::default(), feedback: true }
                    } else {
                        SrStrategy::None
                    },
                    ..CompilerConfig::base()
                }
            }
        };
        let base = match (self.unroll >= 2, base.name) {
            (false, _) => base,
            // The named unroll point keeps its canonical name.
            (true, "OpenUH(SAFARA+small+dim)") => CompilerConfig::safara_unroll(self.unroll),
            (true, _) => CompilerConfig { name: "custom", unroll: self.unroll, ..base },
        };
        // Goal / spill-target / cap overrides. Untouched knobs leave the
        // named configs byte-identical (pinned by the compat tests);
        // combinations matching one of the newer named evaluation points
        // resolve to that point, everything else is labelled custom.
        if self.goal == OptGoal::default()
            && self.spill_target == SpillTarget::default()
            && self.launch_bounds.is_none()
            && self.reg_cap.is_none()
            && !self.saturate
        {
            return base;
        }
        let mut cfg = CompilerConfig {
            goal: self.goal,
            saturate: self.saturate,
            spill_target: self.spill_target,
            launch_bounds: self.launch_bounds.or(base.launch_bounds),
            reg_cap: self.reg_cap.unwrap_or(base.reg_cap),
            ..base
        };
        for named in [
            CompilerConfig::safara_throughput(),
            CompilerConfig::safara_regdem(),
            CompilerConfig::safara_saturated(),
        ] {
            if (CompilerConfig { name: named.name, ..cfg.clone() }) == named {
                return named;
            }
        }
        cfg.name = "custom";
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_knobs() {
        assert!(!CompilerConfig::base().codegen.honor_small);
        assert!(CompilerConfig::small().codegen.honor_small);
        assert!(!CompilerConfig::small().codegen.honor_dim);
        assert!(CompilerConfig::small_dim().codegen.honor_dim);
        assert_eq!(CompilerConfig::base().sr, SrStrategy::None);
        assert!(matches!(CompilerConfig::safara_only().sr, SrStrategy::Safara { .. }));
        assert!(matches!(CompilerConfig::carr_kennedy().sr, SrStrategy::CarrKennedy));
        assert!(!CompilerConfig::pgi_like().codegen.use_readonly_cache);
    }

    #[test]
    #[allow(deprecated)] // the shim must keep resolving wire keys
    fn by_name_resolves_every_key_and_rejects_unknown() {
        for key in CompilerConfig::PROFILE_KEYS {
            assert!(CompilerConfig::by_name(key).is_some(), "{key}");
        }
        // Aliases and normalization.
        assert_eq!(CompilerConfig::by_name("SAFARA").unwrap().name, "OpenUH(SAFARA)");
        assert_eq!(CompilerConfig::by_name("carr-kennedy").unwrap().name, "CarrKennedy");
        assert_eq!(CompilerConfig::by_name(" pgi ").unwrap().name, "PGI(simulated)");
        assert!(CompilerConfig::by_name("nvcc").is_none());
    }

    #[test]
    fn builder_reproduces_every_named_toggle_combination() {
        let b = CompilerConfig::builder;
        assert_eq!(b().build(), CompilerConfig::base());
        assert_eq!(b().safara(true).build(), CompilerConfig::safara_only());
        assert_eq!(b().small(true).build(), CompilerConfig::small());
        assert_eq!(b().small(true).dim(true).build(), CompilerConfig::small_dim());
        assert_eq!(
            b().safara(true).small(true).dim(true).build(),
            CompilerConfig::safara_clauses()
        );
        assert_eq!(b().safara(true).small(true).build(), CompilerConfig::safara_small());
        assert_eq!(b().carr_kennedy(true).build(), CompilerConfig::carr_kennedy());
        assert_eq!(
            b().safara(true).small(true).dim(true).unroll(4).build(),
            CompilerConfig::safara_unroll(4)
        );
    }

    #[test]
    fn builder_sr_strategies_are_mutually_exclusive_and_customs_are_labelled() {
        let cfg = CompilerConfig::builder().safara(true).carr_kennedy(true).build();
        assert!(matches!(cfg.sr, SrStrategy::CarrKennedy), "last strategy set wins");
        let cfg = CompilerConfig::builder().carr_kennedy(true).safara(true).build();
        assert!(matches!(cfg.sr, SrStrategy::Safara { .. }));

        // Off-menu combinations still build, flagged as custom.
        let cfg = CompilerConfig::builder().carr_kennedy(true).small(true).build();
        assert_eq!(cfg.name, "custom");
        assert!(cfg.codegen.honor_small);
        assert!(matches!(cfg.sr, SrStrategy::CarrKennedy));
        let cfg = CompilerConfig::builder().unroll(2).build();
        assert_eq!(cfg.name, "custom");
        assert_eq!(cfg.unroll, 2);
    }

    #[test]
    #[allow(deprecated)]
    fn by_name_shim_agrees_with_the_builder() {
        for (key, want) in [
            ("base", CompilerConfig::builder().build()),
            ("safara_only", CompilerConfig::builder().safara(true).build()),
            ("small_dim", CompilerConfig::builder().small(true).dim(true).build()),
            (
                "safara_clauses",
                CompilerConfig::builder().safara(true).small(true).dim(true).build(),
            ),
            ("carr_kennedy", CompilerConfig::builder().carr_kennedy(true).build()),
        ] {
            assert_eq!(CompilerConfig::by_name(key).unwrap(), want, "{key}");
        }
    }

    #[test]
    fn typed_overrides_compose_with_the_builder() {
        // Overrides resolving to a named point get that point's name.
        assert_eq!(
            CompilerConfig::builder().safara(true).goal(OptGoal::MaxThroughput).build(),
            CompilerConfig::safara_throughput()
        );
        assert_eq!(
            CompilerConfig::builder()
                .safara(true)
                .reg_cap(40)
                .spill_target(SpillTarget::Shared)
                .build(),
            CompilerConfig::safara_regdem()
        );
        assert_eq!(
            CompilerConfig::builder().safara(true).saturate(true).build(),
            CompilerConfig::safara_saturated()
        );
        // Off-menu overrides are labelled custom but keep the knobs.
        let cfg = CompilerConfig::builder().safara(true).small(true).saturate(true).build();
        assert_eq!(cfg.name, "custom");
        assert!(cfg.saturate);
        let cfg = CompilerConfig::builder().safara(true).launch_bounds(256, 2).build();
        assert_eq!(cfg.name, "custom");
        assert_eq!(cfg.launch_bounds, Some((256, 2)));
        let cfg = CompilerConfig::builder().reg_cap(64).build();
        assert_eq!(cfg.name, "custom");
        assert_eq!(cfg.reg_cap, 64);
        // No overrides → byte-identical named configs (the compat pin).
        assert_eq!(CompilerConfig::builder().safara(true).build(), CompilerConfig::safara_only());
    }

    #[test]
    fn new_defaults_are_inert() {
        let cfg = CompilerConfig::base();
        assert_eq!(cfg.goal, OptGoal::MinRegisters);
        assert!(!cfg.saturate);
        assert_eq!(cfg.spill_target, SpillTarget::Local);
        assert_eq!(cfg.launch_bounds, None);
        assert_eq!(cfg.device, DeviceConfig::k20xm());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            CompilerConfig::base().name,
            CompilerConfig::safara_only().name,
            CompilerConfig::small().name,
            CompilerConfig::small_dim().name,
            CompilerConfig::safara_clauses().name,
            CompilerConfig::safara_small().name,
            CompilerConfig::carr_kennedy().name,
            CompilerConfig::pgi_like().name,
            CompilerConfig::safara_count_only().name,
            CompilerConfig::safara_no_feedback().name,
            CompilerConfig::safara_throughput().name,
            CompilerConfig::safara_regdem().name,
            CompilerConfig::safara_saturated().name,
        ];
        let mut uniq = names.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
