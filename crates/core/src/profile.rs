//! Compiler configurations — the named points of the paper's evaluation.

use safara_analysis::cost::CostModel;
use safara_codegen::CodegenOptions;

/// Which scalar-replacement strategy runs (and how).
#[derive(Debug, Clone, PartialEq)]
pub enum SrStrategy {
    /// No scalar replacement.
    None,
    /// SAFARA with the iterative feedback loop and the given cost model.
    Safara {
        /// The candidate-ranking model (latency-aware or count-only).
        cost_model: CostModel,
        /// Disable the feedback loop: apply one unbounded round instead
        /// (an ablation of §III-B.2).
        feedback: bool,
    },
    /// Classical Carr–Kennedy: count-only moderation, inter-iteration
    /// reuse harvested on parallel loops (which are then sequentialized).
    CarrKennedy,
}

/// A complete compiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// Human-readable name (appears in reports and figures).
    pub name: &'static str,
    /// Back-end options (clause honoring, read-only cache, CSE, DCE).
    pub codegen: CodegenOptions,
    /// Scalar-replacement strategy.
    pub sr: SrStrategy,
    /// Per-thread hardware register cap the feedback loop targets
    /// (255 on Kepler).
    pub reg_cap: u32,
    /// Maximum feedback iterations (the paper's loop terminates when
    /// registers saturate; this is a safety bound).
    pub max_feedback_iters: u32,
    /// Unroll innermost sequential loops by this factor before scalar
    /// replacement (0/1 = off) — the paper's §VII future-work extension.
    pub unroll: u32,
}

impl CompilerConfig {
    /// OpenUH baseline: competent codegen, clauses ignored, no SR.
    pub fn base() -> Self {
        CompilerConfig {
            name: "OpenUH(base)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::None,
            reg_cap: 255,
            max_feedback_iters: 8,
            unroll: 0,
        }
    }

    /// Baseline + SAFARA only (the paper's Fig. 7 configuration).
    pub fn safara_only() -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: true },
            ..Self::base()
        }
    }

    /// Baseline honoring only the `small` clause.
    pub fn small() -> Self {
        CompilerConfig {
            name: "OpenUH(+small)",
            codegen: CodegenOptions { honor_small: true, ..CodegenOptions::base() },
            ..Self::base()
        }
    }

    /// Baseline honoring `small` and `dim`.
    pub fn small_dim() -> Self {
        CompilerConfig {
            name: "OpenUH(+small+dim)",
            codegen: CodegenOptions::default(),
            ..Self::base()
        }
    }

    /// The full proposal: `small` + `dim` + SAFARA (Fig. 9's best bars).
    pub fn safara_clauses() -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA+small+dim)",
            codegen: CodegenOptions::default(),
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: true },
            ..Self::base()
        }
    }

    /// SAFARA + `small` only (the NAS benchmarks have no VLAs, so `dim`
    /// does not apply — §V-C).
    pub fn safara_small() -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA+small)",
            codegen: CodegenOptions { honor_small: true, ..CodegenOptions::base() },
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: true },
            ..Self::base()
        }
    }

    /// Classical Carr–Kennedy scalar replacement (the foil of §III-A).
    pub fn carr_kennedy() -> Self {
        CompilerConfig {
            name: "CarrKennedy",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::CarrKennedy,
            ..Self::base()
        }
    }

    /// The simulated PGI-like commercial comparator (see DESIGN.md for
    /// the substitution rationale).
    pub fn pgi_like() -> Self {
        CompilerConfig {
            name: "PGI(simulated)",
            codegen: CodegenOptions::pgi_like(),
            sr: SrStrategy::None,
            ..Self::base()
        }
    }

    /// Ablation: SAFARA ranking candidates by reference count only
    /// (the Carr–Kennedy CPU metric) instead of `count × latency`.
    pub fn safara_count_only() -> Self {
        CompilerConfig {
            name: "SAFARA(count-only)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::Safara { cost_model: CostModel::count_only(), feedback: true },
            ..Self::base()
        }
    }

    /// The §VII future-work extension: unroll innermost sequential loops
    /// before SAFARA, turning inter-iteration reuse into straight-line
    /// reuse.
    pub fn safara_unroll(factor: u32) -> Self {
        CompilerConfig {
            name: "OpenUH(SAFARA+clauses+unroll)",
            unroll: factor,
            ..Self::safara_clauses()
        }
    }

    /// Ablation: SAFARA without the iterative feedback loop (one round,
    /// unbounded budget).
    pub fn safara_no_feedback() -> Self {
        CompilerConfig {
            name: "SAFARA(no-feedback)",
            codegen: CodegenOptions::base(),
            sr: SrStrategy::Safara { cost_model: CostModel::default(), feedback: false },
            ..Self::base()
        }
    }

    /// The stable lookup keys services accept, one per named profile —
    /// see [`CompilerConfig::by_name`].
    pub const PROFILE_KEYS: [&'static str; 10] = [
        "base",
        "safara_only",
        "small",
        "small_dim",
        "safara_clauses",
        "safara_small",
        "carr_kennedy",
        "pgi_like",
        "safara_count_only",
        "safara_no_feedback",
    ];

    /// Resolve a profile by wire-protocol key (case-insensitive, `-`
    /// treated as `_`; a few aliases accepted). `None` for unknown keys.
    pub fn by_name(key: &str) -> Option<CompilerConfig> {
        let k = key.trim().to_ascii_lowercase().replace('-', "_");
        Some(match k.as_str() {
            "base" | "openuh" => Self::base(),
            "safara" | "safara_only" => Self::safara_only(),
            "small" => Self::small(),
            "small_dim" => Self::small_dim(),
            "safara_clauses" | "safara_small_dim" => Self::safara_clauses(),
            "safara_small" => Self::safara_small(),
            "carr_kennedy" | "ck" => Self::carr_kennedy(),
            "pgi" | "pgi_like" => Self::pgi_like(),
            "safara_count_only" => Self::safara_count_only(),
            "safara_no_feedback" => Self::safara_no_feedback(),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_knobs() {
        assert!(!CompilerConfig::base().codegen.honor_small);
        assert!(CompilerConfig::small().codegen.honor_small);
        assert!(!CompilerConfig::small().codegen.honor_dim);
        assert!(CompilerConfig::small_dim().codegen.honor_dim);
        assert_eq!(CompilerConfig::base().sr, SrStrategy::None);
        assert!(matches!(CompilerConfig::safara_only().sr, SrStrategy::Safara { .. }));
        assert!(matches!(CompilerConfig::carr_kennedy().sr, SrStrategy::CarrKennedy));
        assert!(!CompilerConfig::pgi_like().codegen.use_readonly_cache);
    }

    #[test]
    fn by_name_resolves_every_key_and_rejects_unknown() {
        for key in CompilerConfig::PROFILE_KEYS {
            assert!(CompilerConfig::by_name(key).is_some(), "{key}");
        }
        // Aliases and normalization.
        assert_eq!(CompilerConfig::by_name("SAFARA").unwrap().name, "OpenUH(SAFARA)");
        assert_eq!(CompilerConfig::by_name("carr-kennedy").unwrap().name, "CarrKennedy");
        assert_eq!(CompilerConfig::by_name(" pgi ").unwrap().name, "PGI(simulated)");
        assert!(CompilerConfig::by_name("nvcc").is_none());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            CompilerConfig::base().name,
            CompilerConfig::safara_only().name,
            CompilerConfig::small().name,
            CompilerConfig::small_dim().name,
            CompilerConfig::safara_clauses().name,
            CompilerConfig::safara_small().name,
            CompilerConfig::carr_kennedy().name,
            CompilerConfig::pgi_like().name,
            CompilerConfig::safara_count_only().name,
            CompilerConfig::safara_no_feedback().name,
        ];
        let mut uniq = names.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
