//! The compile driver and SAFARA's iterative feedback loop.

use crate::error::CompileError;
use crate::profile::{CompilerConfig, SrStrategy};
use safara_chaos::{FaultAction, FaultPlan, InjectionPoint};
use safara_codegen::lower::{lower_function, CompiledKernel};
use safara_gpusim::device::DeviceConfig;
use safara_gpusim::ptxas::{allocate_registers_with, RegAllocReport};
use safara_ir::printer::print_function;
use safara_ir::{parse_program_unchecked, Function, Stmt};
use safara_obs::Tracer;
use safara_opt::transform::TempNamer;
use safara_opt::{
    carr_kennedy_pass, safara_pass, safara_pass_with, OptGoal, SrOutcome, ThroughputContext,
};
use safara_runtime::{
    run_function, run_function_cached, run_function_shared, Args, LaunchCache, RunReport,
    SharedLaunchCache,
};

/// Evaluate an injection point against an optional plan. `Delay`/`Hang`
/// actions are absorbed here (the sleep *is* the fault); anything else
/// is returned for the call site to turn into its typed failure.
pub(crate) fn fault_at(
    faults: Option<&FaultPlan>,
    point: InjectionPoint,
) -> Option<FaultAction> {
    let plan = faults?;
    let action = plan.check(point)?;
    if plan.apply_delay(&action) {
        return None;
    }
    Some(action)
}

/// The runtime's default block size: every default launch geometry
/// (1D/2D/3D) uses 128 threads per block, so compile-time occupancy and
/// shared-slab estimates made with this value are exact unless a
/// `launch_bounds` contract overrides it.
const DEFAULT_THREADS_PER_BLOCK: u32 = 128;

/// The register cap implied by a `launch_bounds(max_threads, min_blocks)`
/// contract: the largest per-thread count `r` such that `min_blocks`
/// resident blocks of `ceil(max_threads / warp_size)` warps, each warp
/// allocating `roundup(r × warp_size, warp_alloc_granularity)` registers,
/// still fit in the SM's register file — CUDA's `__launch_bounds__` rule.
///
/// Out-of-range contracts are typed errors, never silent clamps: more
/// threads than a block can hold, more resident blocks than an SM
/// supports, or a combination whose implied cap is below the allocator's
/// 4-register floor.
fn launch_bounds_cap(
    dev: &DeviceConfig,
    max_threads: u32,
    min_blocks: u32,
) -> Result<u32, CompileError> {
    if max_threads == 0 || min_blocks == 0 {
        return Err(CompileError::LaunchBounds {
            message: format!(
                "launch_bounds({max_threads}, {min_blocks}) arguments must be positive"
            ),
            span: None,
        });
    }
    if max_threads > dev.max_threads_per_block {
        return Err(CompileError::LaunchBounds {
            message: format!(
                "launch_bounds max_threads {} exceeds the device limit of {} threads per block",
                max_threads, dev.max_threads_per_block
            ),
            span: None,
        });
    }
    if min_blocks > dev.max_blocks_per_sm {
        return Err(CompileError::LaunchBounds {
            message: format!(
                "launch_bounds min_blocks {} exceeds the device limit of {} blocks per SM",
                min_blocks, dev.max_blocks_per_sm
            ),
            span: None,
        });
    }
    let warps_per_block = max_threads.div_ceil(dev.warp_size);
    // regs/warp come in granules of `warp_alloc_granularity`; each granule
    // is `granularity / warp_size` registers per thread.
    let granules =
        dev.regs_per_sm / (min_blocks * warps_per_block * dev.warp_alloc_granularity);
    let cap = (granules * (dev.warp_alloc_granularity / dev.warp_size))
        .min(dev.max_regs_per_thread);
    if cap < 4 {
        return Err(CompileError::LaunchBounds {
            message: format!(
                "launch_bounds({max_threads}, {min_blocks}) implies a register cap of {cap}, \
                 below the allocator floor of 4"
            ),
            span: None,
        });
    }
    Ok(cap)
}

/// The per-kernel register cap: the profile's `reg_cap` tightened by the
/// kernel's own `launch_bounds` clause (or the config-wide override when
/// the clause is absent).
fn kernel_reg_cap(
    config: &CompilerConfig,
    launch_bounds: Option<(u32, u32)>,
) -> Result<u32, CompileError> {
    match launch_bounds.or(config.launch_bounds) {
        Some((t, b)) => Ok(config.reg_cap.min(launch_bounds_cap(&config.device, t, b)?)),
        None => Ok(config.reg_cap),
    }
}

/// The block size the runtime will actually launch with: the
/// `launch_bounds` contract when one is declared, the runtime's uniform
/// default otherwise.
fn planned_threads_per_block(
    config: &CompilerConfig,
    launch_bounds: Option<(u32, u32)>,
) -> u32 {
    launch_bounds
        .or(config.launch_bounds)
        .map(|(t, _)| t)
        .unwrap_or(DEFAULT_THREADS_PER_BLOCK)
}

/// A compiled kernel plus its register-allocation report — the pair the
/// runtime needs and the pair Tables I/II are built from.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelArtifact {
    /// The kernel.
    pub kernel: CompiledKernel,
    /// Its simulated `ptxas -v` report.
    pub alloc: RegAllocReport,
}

/// One compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunction {
    /// Function name.
    pub name: String,
    /// The function AST *after* scalar replacement (print it to see the
    /// Fig. 6-style transformed source).
    pub transformed: Function,
    /// Compiled kernels in launch order.
    pub kernels: Vec<KernelArtifact>,
    /// What scalar replacement did.
    pub sr_outcome: SrOutcome,
    /// Feedback-loop iterations executed.
    pub feedback_rounds: u32,
}

impl CompiledFunction {
    /// The transformed MiniACC source (SAFARA output, Fig. 6 style).
    pub fn transformed_source(&self) -> String {
        print_function(&self.transformed)
    }

    /// Maximum registers used by any of the function's kernels.
    pub fn max_regs(&self) -> u32 {
        self.kernels.iter().map(|k| k.alloc.regs_used).max().unwrap_or(0)
    }
}

/// A compiled MiniACC translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The configuration that produced it.
    pub config: CompilerConfig,
    /// Compiled functions.
    pub functions: Vec<CompiledFunction>,
}

impl CompiledProgram {
    /// Look up a compiled function.
    pub fn function(&self, name: &str) -> Result<&CompiledFunction, CompileError> {
        self.functions
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| CompileError::no_such_function(name))
    }

    /// Execute a function against `args` on `dev`.
    pub fn run(
        &self,
        name: &str,
        args: &mut Args,
        dev: &DeviceConfig,
    ) -> Result<RunReport, CompileError> {
        let f = self.function(name)?;
        let compiled: Vec<(CompiledKernel, RegAllocReport)> =
            f.kernels.iter().map(|k| (k.kernel.clone(), k.alloc.clone())).collect();
        Ok(run_function(dev, &f.transformed, &compiled, args)?)
    }

    /// [`CompiledProgram::run`] with launch memoization through `cache`.
    pub fn run_cached(
        &self,
        name: &str,
        args: &mut Args,
        dev: &DeviceConfig,
        cache: &mut LaunchCache,
    ) -> Result<RunReport, CompileError> {
        let f = self.function(name)?;
        let compiled: Vec<(CompiledKernel, RegAllocReport)> =
            f.kernels.iter().map(|k| (k.kernel.clone(), k.alloc.clone())).collect();
        Ok(run_function_cached(dev, &f.transformed, &compiled, args, Some(cache))?)
    }

    /// [`CompiledProgram::run`] with launch memoization through a
    /// thread-shared cache — the concurrent-service path: many worker
    /// threads run against one process-wide [`SharedLaunchCache`].
    pub fn run_shared(
        &self,
        name: &str,
        args: &mut Args,
        dev: &DeviceConfig,
        cache: &SharedLaunchCache,
    ) -> Result<RunReport, CompileError> {
        let f = self.function(name)?;
        let compiled: Vec<(CompiledKernel, RegAllocReport)> =
            f.kernels.iter().map(|k| (k.kernel.clone(), k.alloc.clone())).collect();
        Ok(run_function_shared(dev, &f.transformed, &compiled, args, cache)?)
    }
}

/// Compile MiniACC source under a configuration.
pub fn compile(src: &str, config: &CompilerConfig) -> Result<CompiledProgram, CompileError> {
    compile_impl(src, config, &mut Tracer::disabled(), None)
}

/// [`compile`] recording one span per pipeline phase into `tracer`:
/// `parse` → `sema` → `analysis` → `opt` (with one `round` child per
/// feedback iteration, carrying `regs_used`/`budget` metadata) →
/// `codegen` → `regalloc`. Each phase covers *all* functions of the
/// translation unit, so a traced compile produces each phase exactly
/// once. With a disabled tracer this **is** [`compile`]: same code
/// path, same output.
pub fn compile_traced(
    src: &str,
    config: &CompilerConfig,
    tracer: &mut Tracer,
) -> Result<CompiledProgram, CompileError> {
    compile_impl(src, config, tracer, None)
}

/// [`compile_traced`] evaluating `faults` at each phase's injection
/// point. With an inert plan this is exactly [`compile_traced`]; with
/// faults scheduled, phases fail with their typed error, feedback
/// rounds are forced to spill (and reverted, as the loop always does),
/// or phases stall — deterministically per the plan's seed.
pub fn compile_with_faults(
    src: &str,
    config: &CompilerConfig,
    tracer: &mut Tracer,
    faults: &FaultPlan,
) -> Result<CompiledProgram, CompileError> {
    compile_impl(src, config, tracer, Some(faults))
}

pub(crate) fn compile_impl(
    src: &str,
    config: &CompilerConfig,
    tracer: &mut Tracer,
    faults: Option<&FaultPlan>,
) -> Result<CompiledProgram, CompileError> {
    // Reject out-of-range caps before any work: a cap below the
    // allocator's floor or above the architectural per-thread maximum is
    // a configuration error, not something to clamp quietly.
    if config.reg_cap < 4 || config.reg_cap > config.device.max_regs_per_thread {
        return Err(CompileError::LaunchBounds {
            message: format!(
                "reg_cap {} out of range [4, {}] for {}",
                config.reg_cap, config.device.max_regs_per_thread, config.device.name
            ),
            span: None,
        });
    }
    if let Some((t, b)) = config.launch_bounds {
        launch_bounds_cap(&config.device, t, b)?;
    }

    let program = tracer.span("parse", |t| {
        if let Some(FaultAction::Fail) = fault_at(faults, InjectionPoint::Parse) {
            return Err(CompileError::Parse {
                message: "injected front-end fault".into(),
                span: None,
            });
        }
        let p = parse_program_unchecked(src).map_err(CompileError::from)?;
        t.meta_int("functions", p.functions.len() as i64);
        Ok::<_, CompileError>(p)
    })?;

    tracer.span("sema", |_| {
        if let Some(FaultAction::Fail) = fault_at(faults, InjectionPoint::Sema) {
            return Err(CompileError::Sema { message: "injected sema fault".into(), span: None });
        }
        safara_ir::sema::check_program(&program)
            .map_err(|e| CompileError::from(safara_ir::CompileError::Sema(e)))
    })?;

    if let Some(FaultAction::Fail | FaultAction::Poison) =
        fault_at(faults, InjectionPoint::Analysis)
    {
        return Err(CompileError::Analysis { message: "injected analysis fault".into() });
    }

    // Reuse analysis over every offload region. The SR passes re-derive
    // this per round; the phase measures the standalone analysis cost
    // and reports what the optimizer has to work with.
    tracer.span("analysis", |t| {
        let (mut regions, mut groups) = (0i64, 0i64);
        for f in &program.functions {
            for_each_region_ref(f, |region| {
                let info = safara_analysis::region::RegionInfo::analyze(region);
                groups += safara_analysis::reuse::find_reuse_groups(region, &info).len() as i64;
                regions += 1;
            });
        }
        t.meta_int("regions", regions);
        t.meta_int("reuse_groups", groups);
    });

    let mut optimized: Vec<(Function, SrOutcome, u32)> = Vec::new();
    tracer.span("opt", |t| {
        for f in &program.functions {
            optimized.push(optimize_function(f, config, t, faults)?);
        }
        Ok::<_, CompileError>(())
    })?;

    let mut lowered: Vec<Vec<CompiledKernel>> = Vec::new();
    tracer.span("codegen", |t| {
        for (work, _, _) in &optimized {
            lowered.push(lower_function(work, &config.codegen)?);
        }
        t.meta_int("kernels", lowered.iter().map(Vec::len).sum::<usize>() as i64);
        Ok::<_, CompileError>(())
    })?;

    if let Some(FaultAction::Fail | FaultAction::Spill) =
        fault_at(faults, InjectionPoint::RegAlloc)
    {
        let kernel = lowered
            .iter()
            .flatten()
            .next()
            .map(|k| k.name.clone())
            .unwrap_or_else(|| "<no kernels>".into());
        return Err(CompileError::RegAllocSpill {
            kernel,
            regs_used: config.reg_cap + 1,
            reg_cap: config.reg_cap,
        });
    }

    let functions = tracer.span("regalloc", |t| {
        let mut max_regs = 0u32;
        let functions: Vec<CompiledFunction> = program
            .functions
            .iter()
            .zip(optimized)
            .zip(lowered)
            .map(|((f, (work, outcome, rounds)), kernels)| {
                let kernels: Vec<KernelArtifact> = kernels
                    .into_iter()
                    .map(|kernel| {
                        let art = allocate_artifact(kernel, config)?;
                        max_regs = max_regs.max(art.alloc.regs_used);
                        Ok(art)
                    })
                    .collect::<Result<_, CompileError>>()?;
                Ok(CompiledFunction {
                    name: f.name.to_string(),
                    transformed: work,
                    kernels,
                    sr_outcome: outcome,
                    feedback_rounds: rounds,
                })
            })
            .collect::<Result<_, CompileError>>()?;
        t.meta_int("max_regs", max_regs as i64);
        t.meta_int("reg_cap", config.reg_cap as i64);
        Ok::<_, CompileError>(functions)
    })?;

    Ok(CompiledProgram { config: config.clone(), functions })
}

fn codegen_all(
    f: &Function,
    config: &CompilerConfig,
) -> Result<Vec<KernelArtifact>, CompileError> {
    let kernels = lower_function(f, &config.codegen)?;
    kernels.into_iter().map(|kernel| allocate_artifact(kernel, config)).collect()
}

/// Run register allocation for one lowered kernel under the effective
/// per-kernel cap, spill target, and planned block geometry.
fn allocate_artifact(
    kernel: CompiledKernel,
    config: &CompilerConfig,
) -> Result<KernelArtifact, CompileError> {
    let cap = kernel_reg_cap(config, kernel.launch_bounds)?;
    let tpb = planned_threads_per_block(config, kernel.launch_bounds);
    let alloc = allocate_registers_with(
        &kernel.vir,
        cap,
        config.spill_target,
        tpb,
        config.device.shared_mem_per_sm,
    );
    Ok(KernelArtifact { kernel, alloc })
}

/// The optimization half of the pipeline: unroll plus the configured
/// scalar-replacement strategy (including SAFARA's feedback loop, whose
/// in-loop measurement compiles stay inside the `opt` span). Returns
/// the transformed function, what SR did, and the rounds executed.
fn optimize_function(
    f: &Function,
    config: &CompilerConfig,
    tracer: &mut Tracer,
    faults: Option<&FaultPlan>,
) -> Result<(Function, SrOutcome, u32), CompileError> {
    let mut work = f.clone();
    let mut namer = TempNamer::default();
    let mut outcome = SrOutcome::default();
    let mut rounds = 0u32;

    // The §VII extension: unroll innermost sequential loops first so the
    // scalar-replacement passes below see straight-line reuse.
    if config.unroll >= 2 {
        for_each_region(&mut work, |region| {
            let info = safara_analysis::region::RegionInfo::analyze(region);
            safara_opt::unroll::unroll_seq_loops(
                &mut region.body,
                config.unroll,
                &info,
                &mut namer,
            );
        });
    }

    // The equality-saturation phase runs ahead of scalar replacement:
    // region expressions are hash-consed into an e-graph, saturated with
    // integer-ring rewrites (CSE, offset factoring, strength reduction,
    // guarded narrowing), and re-extracted by predicted register cost.
    // The extraction's structural weights only *rank* candidates — the
    // real acceptance test below recompiles through the ptxas register
    // model (or the occupancy oracle under the throughput goal) and
    // reverts anything that is not an improvement, so the phase can
    // never make a kernel worse.
    if config.saturate {
        work = saturate_function(work, config, tracer, faults)?;
    }

    match &config.sr {
        SrStrategy::None => {}
        SrStrategy::CarrKennedy => {
            // Classical behaviour: one pass, count-only moderation against
            // the full register file.
            let snapshot = f.clone();
            for_each_region(&mut work, |region| {
                let o = carr_kennedy_pass(&snapshot, region, config.reg_cap, &mut namer);
                merge_outcome(&mut outcome, o);
            });
            rounds = 1;
        }
        SrStrategy::Safara { cost_model, feedback } => {
            if !*feedback {
                // Ablation: single unbounded round.
                let snapshot = f.clone();
                for_each_region(&mut work, |region| {
                    let o = safara_pass(&snapshot, region, config.reg_cap, cost_model, &mut namer);
                    merge_outcome(&mut outcome, o);
                });
                rounds = 1;
            } else {
                // The iterative feedback loop (§III-B.2).
                loop {
                    if rounds >= config.max_feedback_iters {
                        break;
                    }
                    rounds += 1;
                    // Mid-loop fault injection: a `Fail` here models the
                    // backend dying between rounds (typed as a budget
                    // failure); a `Spill` forces this round down the
                    // paper's revert path below.
                    let forced_spill = match fault_at(faults, InjectionPoint::FeedbackRound) {
                        Some(FaultAction::Fail) => {
                            return Err(CompileError::Budget {
                                message: format!(
                                    "injected backend fault in feedback round {rounds}"
                                ),
                            });
                        }
                        Some(FaultAction::Spill) => true,
                        _ => false,
                    };
                    tracer.begin("round");
                    // 1. Backend compile, no further SR: measure registers.
                    let arts = match codegen_all(&work, config) {
                        Ok(a) => a,
                        Err(e) => {
                            tracer.end();
                            return Err(e);
                        }
                    };
                    let used = arts.iter().map(|a| a.alloc.regs_used).max().unwrap_or(0);
                    // The budget is measured against the tightest effective
                    // cap of any kernel: a `launch_bounds` contract lowers
                    // the ceiling the feedback loop may fill.
                    let mut cap = config.reg_cap;
                    for a in &arts {
                        match kernel_reg_cap(config, a.kernel.launch_bounds) {
                            Ok(c) => cap = cap.min(c),
                            Err(e) => {
                                tracer.end();
                                return Err(e);
                            }
                        }
                    }
                    let budget = cap.saturating_sub(used);
                    tracer.meta_int("regs_used", used as i64);
                    tracer.meta_int("budget", budget as i64);
                    if budget == 0 {
                        tracer.end();
                        break;
                    }
                    // 2. One SR round within the budget. Under the
                    // throughput goal each region gets an occupancy oracle
                    // seeded with the measured register use and the block
                    // size the runtime will launch with.
                    let snapshot = work.clone();
                    let mut round_outcome = SrOutcome::default();
                    let mut trial = work.clone();
                    for_each_region(&mut trial, |region| {
                        let clause_tpb = region
                            .directive
                            .clauses
                            .launch_bounds
                            .as_ref()
                            .and_then(|lb| lb.max_threads.as_const())
                            .map(|t| t.max(1) as u32);
                        let tpb = clause_tpb
                            .or(config.launch_bounds.map(|(t, _)| t))
                            .unwrap_or(DEFAULT_THREADS_PER_BLOCK);
                        let throughput =
                            (config.goal == OptGoal::MaxThroughput).then_some(ThroughputContext {
                                device: config.device,
                                threads_per_block: tpb,
                                regs_in_use: used,
                            });
                        let o = safara_pass_with(
                            &snapshot,
                            region,
                            budget,
                            cost_model,
                            config.goal,
                            throughput,
                            &mut namer,
                        );
                        merge_outcome(&mut round_outcome, o);
                    });
                    tracer.meta_int("temps_added", round_outcome.temps_added as i64);
                    if round_outcome.temps_added == 0 {
                        tracer.end();
                        break; // all reused references are replaced
                    }
                    // 3. Recompile; revert the round if it now spills.
                    let new_arts = match codegen_all(&trial, config) {
                        Ok(a) => a,
                        Err(e) => {
                            tracer.end();
                            return Err(e);
                        }
                    };
                    let spills = forced_spill || new_arts.iter().any(|a| !a.alloc.fits());
                    if spills {
                        tracer.meta_str("ended", "reverted_spill");
                        tracer.end();
                        break; // registers saturated: keep previous state
                    }
                    work = trial;
                    merge_outcome(&mut outcome, round_outcome);
                    tracer.end();
                }
            }
        }
    }

    Ok((work, outcome, rounds))
}

/// Saturate every offload region of `work`, then accept or revert the
/// whole function against the configured goal. Returns the function to
/// continue compiling with (the saturated trial when it helps, the
/// original otherwise).
fn saturate_function(
    work: Function,
    config: &CompilerConfig,
    tracer: &mut Tracer,
    faults: Option<&FaultPlan>,
) -> Result<Function, CompileError> {
    if let Some(FaultAction::Fail) = fault_at(faults, InjectionPoint::Saturate) {
        return Err(CompileError::Saturate {
            message: "injected saturation fault".into(),
            span: None,
        });
    }
    tracer.begin("saturate");
    let result =
        saturate_function_inner(&work, config, tracer, &safara_opt::SaturateConfig::default());
    tracer.end();
    match result {
        Ok(Some(trial)) => Ok(trial),
        Ok(None) => Ok(work),
        Err(e) => Err(e),
    }
}

/// The traced body of [`saturate_function`]: `Ok(Some(trial))` to adopt
/// the saturated function, `Ok(None)` to keep the original.
fn saturate_function_inner(
    work: &Function,
    config: &CompilerConfig,
    tracer: &mut Tracer,
    scfg: &safara_opt::SaturateConfig,
) -> Result<Option<Function>, CompileError> {
    let before = codegen_all(work, config)?;
    let mut trial = work.clone();
    let mut agg = safara_opt::RegionSaturation::empty();
    let mut failed: Option<CompileError> = None;
    for_each_region(&mut trial, |region| {
        if failed.is_some() {
            return;
        }
        let span = region.span;
        match safara_opt::saturate_region(work, region, config.codegen.honor_small, scfg) {
            Ok(r) => agg.absorb(&r),
            Err(e) => {
                failed = Some(CompileError::Saturate {
                    message: e.to_string(),
                    span: Some(span),
                });
            }
        }
    });
    if let Some(e) = failed {
        return Err(e);
    }
    tracer.meta_int("rounds", agg.stats.rounds as i64);
    tracer.meta_int("e_classes", agg.stats.e_classes as i64);
    tracer.meta_int("e_nodes", agg.stats.e_nodes as i64);
    tracer.meta_int("cost_before", agg.cost_before as i64);
    tracer.meta_int("cost_after", agg.cost_after as i64);
    tracer.meta_str("stop", agg.stats.stop.name());
    let after = codegen_all(&trial, config)?;
    let keep = match config.goal {
        // The paper's policy: fewer registers wins; on a register tie the
        // shorter instruction stream wins; otherwise revert.
        OptGoal::MinRegisters => {
            let regs = |arts: &[KernelArtifact]| {
                arts.iter().map(|a| a.alloc.regs_used).max().unwrap_or(0)
            };
            let insts = |arts: &[KernelArtifact]| {
                arts.iter().map(|a| a.kernel.vir.insts.len()).sum::<usize>()
            };
            (regs(&after), insts(&after)) <= (regs(&before), insts(&before))
        }
        // Throughput goal: the occupancy oracle (PR 8) judges the worst
        // kernel's resident warps under the planned block geometry.
        OptGoal::MaxThroughput => {
            let warps = |arts: &[KernelArtifact]| {
                arts.iter()
                    .map(|a| {
                        let tpb = planned_threads_per_block(config, a.kernel.launch_bounds);
                        config.device.occupancy(a.alloc.regs_used, tpb).active_warps_per_sm
                    })
                    .min()
                    .unwrap_or(0)
            };
            warps(&after) >= warps(&before)
        }
    };
    tracer.meta_str("verdict", if keep { "kept" } else { "reverted" });
    Ok(keep.then_some(trial))
}

fn merge_outcome(into: &mut SrOutcome, o: SrOutcome) {
    into.temps_added += o.temps_added;
    into.groups_applied += o.groups_applied;
    into.est_loads_saved += o.est_loads_saved;
    for v in o.sequentialized {
        if !into.sequentialized.contains(&v) {
            into.sequentialized.push(v);
        }
    }
}

fn for_each_region_ref(f: &Function, mut g: impl FnMut(&safara_ir::OffloadRegion)) {
    fn walk(stmts: &[Stmt], g: &mut impl FnMut(&safara_ir::OffloadRegion)) {
        for s in stmts {
            match s {
                Stmt::Region(r) => g(r),
                Stmt::For(f) => walk(&f.body, g),
                Stmt::If { then_body, else_body, .. } => {
                    walk(then_body, g);
                    walk(else_body, g);
                }
                Stmt::Block(b) => walk(b, g),
                _ => {}
            }
        }
    }
    walk(&f.body, &mut g);
}

fn for_each_region(f: &mut Function, mut g: impl FnMut(&mut safara_ir::OffloadRegion)) {
    fn walk(stmts: &mut [Stmt], g: &mut impl FnMut(&mut safara_ir::OffloadRegion)) {
        for s in stmts {
            match s {
                Stmt::Region(r) => g(r),
                Stmt::For(f) => walk(&mut f.body, g),
                Stmt::If { then_body, else_body, .. } => {
                    walk(then_body, g);
                    walk(else_body, g);
                }
                Stmt::Block(b) => walk(b, g),
                _ => {}
            }
        }
    }
    walk(&mut f.body, &mut g);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CompilerConfig;

    const FIG5: &str = r#"
    void fig5(int jsize, int isize, float a[260][260], float b[260][260],
              float c[260], float d[260]) {
      #pragma acc kernels
      {
        #pragma acc loop gang vector
        for (int j = 1; j <= jsize; j++) {
          #pragma acc loop seq
          for (int i = 1; i <= isize; i++) {
            a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
          }
        }
      }
    }"#;

    #[test]
    fn base_profile_compiles_without_sr() {
        let p = compile(FIG5, &CompilerConfig::base()).unwrap();
        let f = p.function("fig5").unwrap();
        assert_eq!(f.sr_outcome.temps_added, 0);
        assert_eq!(f.kernels.len(), 1);
        assert!(f.kernels[0].alloc.regs_used > 0);
    }

    #[test]
    fn safara_feedback_loop_adds_temps_and_converges() {
        let p = compile(FIG5, &CompilerConfig::safara_only()).unwrap();
        let f = p.function("fig5").unwrap();
        assert!(f.sr_outcome.temps_added >= 3, "{:?}", f.sr_outcome);
        assert!(f.feedback_rounds >= 2, "loop must iterate: {}", f.feedback_rounds);
        assert!(f.transformed_source().contains("__sr"));
        // No spilling after SAFARA (the loop reverts spilling rounds).
        assert!(f.kernels.iter().all(|k| k.alloc.fits()));
    }

    #[test]
    fn safara_uses_more_registers_than_base() {
        let base = compile(FIG5, &CompilerConfig::base()).unwrap();
        let safara = compile(FIG5, &CompilerConfig::safara_only()).unwrap();
        assert!(
            safara.function("fig5").unwrap().max_regs()
                >= base.function("fig5").unwrap().max_regs(),
            "SR trades registers for loads"
        );
    }

    #[test]
    fn run_produces_correct_results_under_all_profiles() {
        let n = 34usize;
        let src = FIG5;
        // Reference: plain Rust implementation of fig5's loop nest.
        let reference = |a: &mut Vec<f32>, b: &[f32]| {
            for j in 1..=n {
                for i in 1..=n {
                    a[i * 260 + j] += a[(i - 1) * 260 + j]
                        + b[j * 260 + (i - 1)]
                        + a[(i + 1) * 260 + j]
                        + b[j * 260 + (i + 1)];
                }
            }
        };
        let a0: Vec<f32> = (0..260 * 260).map(|i| (i % 97) as f32 * 0.25).collect();
        let b0: Vec<f32> = (0..260 * 260).map(|i| (i % 53) as f32 * 0.5).collect();
        let mut want = a0.clone();
        reference(&mut want, &b0);

        for cfg in [
            CompilerConfig::base(),
            CompilerConfig::safara_only(),
            CompilerConfig::small(),
            CompilerConfig::small_dim(),
            CompilerConfig::safara_clauses(),
            CompilerConfig::pgi_like(),
            CompilerConfig::carr_kennedy(),
        ] {
            let p = compile(src, &cfg).unwrap();
            let mut args = crate::Args::new()
                .i32("jsize", n as i32)
                .i32("isize", n as i32)
                .array_f32("a", &a0)
                .array_f32("b", &b0)
                .array_f32("c", &vec![0.0; 260])
                .array_f32("d", &vec![0.0; 260]);
            p.run("fig5", &mut args, &DeviceConfig::k20xm())
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
            let got = args.array("a").unwrap().as_f32();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "{}: a[{i}] = {g}, want {w}",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn launch_bounds_clause_caps_registers() {
        // K20Xm, launch_bounds(256, 4): 8 warps/block × 4 blocks × 256-reg
        // granules must fit 65536 regs/SM → 8 granules/warp → 64 regs/thread.
        let src = FIG5.replace(
            "#pragma acc kernels",
            "#pragma acc kernels launch_bounds(256, 4)",
        );
        let p = compile(&src, &CompilerConfig::safara_only()).unwrap();
        let f = p.function("fig5").unwrap();
        assert_eq!(f.kernels[0].kernel.launch_bounds, Some((256, 4)));
        assert!(f.max_regs() <= 64, "cap 64, used {}", f.max_regs());

        // The same contract through the builder override, no clause.
        let cfg = CompilerConfig::builder().safara(true).launch_bounds(256, 4).build();
        let p = compile(FIG5, &cfg).unwrap();
        assert!(p.function("fig5").unwrap().max_regs() <= 64);
    }

    #[test]
    fn out_of_range_launch_bounds_is_a_typed_error() {
        // More threads than a block can hold.
        let src = FIG5.replace(
            "#pragma acc kernels",
            "#pragma acc kernels launch_bounds(2048)",
        );
        let err = compile(&src, &CompilerConfig::safara_only()).unwrap_err();
        assert_eq!(err.code(), "launch_bounds");
        assert!(err.to_string().contains("threads per block"), "{err}");

        // More resident blocks than an SM supports (config-wide override).
        let cfg = CompilerConfig::builder().launch_bounds(128, 64).build();
        let err = compile(FIG5, &cfg).unwrap_err();
        assert_eq!(err.code(), "launch_bounds");
        assert!(err.to_string().contains("blocks per SM"), "{err}");

        // A contract whose implied cap is below the allocator floor.
        let src = FIG5.replace(
            "#pragma acc kernels",
            "#pragma acc kernels launch_bounds(1024, 16)",
        );
        let err = compile(&src, &CompilerConfig::safara_only()).unwrap_err();
        assert_eq!(err.code(), "launch_bounds");
        assert!(err.to_string().contains("allocator floor"), "{err}");
        assert!(!err.retryable());
    }

    #[test]
    fn out_of_range_reg_cap_is_a_typed_error_not_a_clamp() {
        for cap in [0u32, 3, 256, 1000] {
            let cfg = CompilerConfig { reg_cap: cap, ..CompilerConfig::base() };
            let err = compile(FIG5, &cfg).unwrap_err();
            assert_eq!(err.code(), "launch_bounds", "cap {cap}");
            assert!(err.to_string().contains("out of range"), "{err}");
        }
        // The boundary values themselves are accepted.
        for cap in [4u32, 255] {
            let cfg = CompilerConfig { reg_cap: cap, ..CompilerConfig::base() };
            compile(FIG5, &cfg).unwrap();
        }
    }

    #[test]
    fn missing_function_reported() {
        let p = compile(FIG5, &CompilerConfig::base()).unwrap();
        let err = p.function("nope").unwrap_err();
        assert_eq!(err.code(), "sema");
        assert!(err.to_string().contains("no such function `nope`"));
    }

    #[test]
    fn bad_source_reports_parse_error_with_span() {
        let err = compile("void f(", &CompilerConfig::base()).unwrap_err();
        assert!(matches!(err, CompileError::Parse { .. }), "{err}");
        assert!(err.span().is_some(), "front-end errors carry provenance");
        assert!(!err.retryable());
    }

    #[test]
    fn injected_front_end_faults_produce_typed_errors() {
        use safara_chaos::Fire;
        for (point, code) in [
            (InjectionPoint::Parse, "parse"),
            (InjectionPoint::Sema, "sema"),
            (InjectionPoint::Analysis, "analysis"),
            (InjectionPoint::RegAlloc, "regalloc_spill"),
        ] {
            let plan = FaultPlan::seeded(0).with(point, FaultAction::Fail, Fire::First(1));
            let err = compile_with_faults(
                FIG5,
                &CompilerConfig::base(),
                &mut Tracer::disabled(),
                &plan,
            )
            .unwrap_err();
            assert_eq!(err.code(), code, "{point:?}");
            // The very next compile under the same plan is clean.
            compile_with_faults(FIG5, &CompilerConfig::base(), &mut Tracer::disabled(), &plan)
                .unwrap_or_else(|e| panic!("{point:?} second compile: {e}"));
        }
    }

    #[test]
    fn forced_feedback_spill_reverts_the_round_not_the_compile() {
        use safara_chaos::Fire;
        // Force the *first* feedback round to report spilling: the loop
        // must revert it and terminate cleanly, like the paper's loop
        // does for a genuinely spilling round.
        let plan = FaultPlan::seeded(0).with(
            InjectionPoint::FeedbackRound,
            FaultAction::Spill,
            Fire::First(1),
        );
        let faulted = compile_with_faults(
            FIG5,
            &CompilerConfig::safara_only(),
            &mut Tracer::disabled(),
            &plan,
        )
        .unwrap();
        let f = faulted.function("fig5").unwrap();
        assert_eq!(f.feedback_rounds, 1, "round 1 forced to spill ends the loop");
        assert_eq!(f.sr_outcome.temps_added, 0, "the spilling round was reverted");
        assert!(f.kernels.iter().all(|k| k.alloc.fits()));

        // A mid-loop fail is a typed budget error, not a panic.
        let plan = FaultPlan::seeded(0).with(
            InjectionPoint::FeedbackRound,
            FaultAction::Fail,
            Fire::First(1),
        );
        let err = compile_with_faults(
            FIG5,
            &CompilerConfig::safara_only(),
            &mut Tracer::disabled(),
            &plan,
        )
        .unwrap_err();
        assert_eq!(err.code(), "budget");
        assert_eq!(err.phase().name(), "opt");
    }

    #[test]
    fn saturated_profile_compiles_and_never_regresses() {
        let plain = compile(FIG5, &CompilerConfig::safara_only()).unwrap();
        let sat = compile(FIG5, &CompilerConfig::safara_saturated()).unwrap();
        let (p, s) = (plain.function("fig5").unwrap(), sat.function("fig5").unwrap());
        // The ptxas guard reverts any extraction the register model
        // dislikes, so saturated can match but never exceed greedy.
        assert!(s.max_regs() <= p.max_regs(), "{} > {}", s.max_regs(), p.max_regs());
        assert_eq!(s.kernels.len(), p.kernels.len());
    }

    #[test]
    fn injected_saturate_fault_is_a_typed_error() {
        use safara_chaos::Fire;
        let plan = FaultPlan::seeded(0).with(
            InjectionPoint::Saturate,
            FaultAction::Fail,
            Fire::First(1),
        );
        let err = compile_with_faults(
            FIG5,
            &CompilerConfig::safara_saturated(),
            &mut Tracer::disabled(),
            &plan,
        )
        .unwrap_err();
        assert_eq!(err.code(), "saturate");
        assert_eq!(err.phase().name(), "opt");
        assert!(!err.retryable());
        // The very next compile under the same plan is clean.
        compile_with_faults(
            FIG5,
            &CompilerConfig::safara_saturated(),
            &mut Tracer::disabled(),
            &plan,
        )
        .unwrap();
        // With the phase disabled the injection point is never reached.
        let plan = FaultPlan::seeded(0).with(
            InjectionPoint::Saturate,
            FaultAction::Fail,
            Fire::First(1),
        );
        compile_with_faults(FIG5, &CompilerConfig::safara_only(), &mut Tracer::disabled(), &plan)
            .unwrap();
    }

    #[test]
    fn saturation_cap_breach_is_a_typed_error_with_region_span() {
        let program = parse_program_unchecked(FIG5).unwrap();
        let f = &program.functions[0];
        let cfg = CompilerConfig::safara_saturated();
        // A cap far below FIG5's e-node population: saturation must stop
        // with a typed error carrying the region's span, never hang.
        let scfg = safara_opt::SaturateConfig { max_rounds: 6, max_nodes: 4 };
        let err = saturate_function_inner(f, &cfg, &mut Tracer::disabled(), &scfg).unwrap_err();
        assert_eq!(err.code(), "saturate");
        assert!(err.span().is_some(), "cap errors carry the region span: {err}");
        assert!(err.to_string().contains("e-node cap"), "{err}");
    }

    #[test]
    fn inert_plan_output_is_identical_to_plain_compile() {
        let plain = compile(FIG5, &CompilerConfig::safara_only()).unwrap();
        let inert = compile_with_faults(
            FIG5,
            &CompilerConfig::safara_only(),
            &mut Tracer::disabled(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(plain, inert);
    }
}
