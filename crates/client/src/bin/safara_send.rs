//! `safara-send` — pipe ND-JSON request lines to a sharded
//! `safara-serve` deployment, routing each run to the shard that owns
//! its cache partition.
//!
//! ```text
//! safara-send --shards "ADDR0 ADDR1 ..." [--shutdown] < requests.ndjson
//! ```
//!
//! Reads one request per line on stdin, routes untraced `run` requests
//! by consistent hash of their content key (the same
//! `protocol::run_key` / `protocol::shard_for` pair the server's
//! single-flight table and `ShardedClient` use); everything else —
//! pings, compiles, stats, traced runs, unparseable lines — goes to
//! shard 0. Responses print on stdout in input order. Lines are
//! forwarded verbatim, so request ids and field order survive — byte
//! diffs against a single-shard run stay meaningful.
//!
//! `--shutdown` sends `{"op":"shutdown"}` to every shard at EOF, so a
//! smoke test can tear the whole deployment down in one pipeline.

use safara_server::protocol::{parse_request, run_key, shard_for, Op};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn die(msg: &str) -> ! {
    eprintln!("safara-send: {msg}");
    std::process::exit(2);
}

struct Shard {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Shard {
    fn connect(addr: &str) -> Shard {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| die(&format!("cannot connect to shard {addr}: {e}")));
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(
            stream.try_clone().unwrap_or_else(|e| die(&format!("clone {addr}: {e}"))),
        );
        Shard { writer: stream, reader }
    }

    /// Write one request line and read its one response line.
    fn roundtrip(&mut self, line: &str) -> String {
        let send = |w: &mut TcpStream| -> std::io::Result<()> {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()
        };
        send(&mut self.writer).unwrap_or_else(|e| die(&format!("write failed: {e}")));
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => die("shard closed the connection before answering"),
            Ok(_) => response.trim_end().to_string(),
            Err(e) => die(&format!("read failed: {e}")),
        }
    }
}

fn main() {
    let mut addrs: Vec<String> = Vec::new();
    let mut shutdown = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--shards" => {
                let list = argv.next().unwrap_or_else(|| die("--shards needs \"ADDR0 ADDR1 ...\""));
                addrs = list
                    .split([' ', ','])
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("usage: safara-send --shards \"ADDR0 ADDR1 ...\" [--shutdown] < requests");
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if addrs.is_empty() {
        die("--shards is required");
    }
    let mut shards: Vec<Shard> = addrs.iter().map(|a| Shard::connect(a)).collect();
    let n = shards.len() as u32;

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Untraced runs route by content key; anything else (including
        // lines the server will reject) pins to shard 0 so errors and
        // control ops have a deterministic home.
        let shard = match parse_request(line) {
            Ok(req) => match (&req.op, req.trace) {
                (Op::Run(r), false) => shard_for(run_key(r), n) as usize,
                _ => 0,
            },
            Err(_) => 0,
        };
        let response = shards[shard].roundtrip(line);
        writeln!(out, "{response}").unwrap_or_else(|e| die(&format!("stdout: {e}")));
    }
    if shutdown {
        for shard in &mut shards {
            let _ = shard.roundtrip(r#"{"op":"shutdown"}"#);
        }
    }
    let _ = out.flush();
}
