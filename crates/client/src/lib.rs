//! # safara-client — a pipelined ND-JSON client for `safara-serve`
//!
//! Speaks protocol v2 over TCP: one connection, many requests in
//! flight. A background reader thread routes responses to callers by
//! `id`, so requests pipeline freely — [`Client::begin`] returns a
//! [`Pending`] handle immediately and [`Pending::wait`] blocks only
//! that caller.
//!
//! Failure handling is the point of this crate:
//!
//! - every remote failure surfaces as a typed [`ClientError::Remote`]
//!   carrying the server's stable `code`, `phase`, and `retryable`
//!   contract (see `safara_server::protocol::WireError`);
//! - every wait is bounded by a per-request deadline
//!   ([`ClientError::Timeout`] — the server may still answer later;
//!   the late reply is discarded by the reader);
//! - [`Client::retry`] re-sends exactly the errors the server marked
//!   `retryable`, spacing attempts with `safara_chaos::Backoff`
//!   (decorrelated jitter, seeded — reruns back off identically) and
//!   clamping every sleep to the deadline budget, so backoff can never
//!   outlive the deadline the caller asked for;
//! - [`ShardedClient`] fans one logical client across the workers of
//!   `safara-serve --shards N`, routing each run by consistent hash of
//!   its content key so identical requests always land on the shard
//!   that owns their cache partition.
//!
//! ```no_run
//! use safara_client::{Client, RetryPolicy};
//! let client = Client::connect("127.0.0.1:4860").unwrap();
//! let pong = client.ping().unwrap();
//! assert_eq!(pong.get("status").and_then(safara_server::json::Json::as_str), Some("ok"));
//! let policy = RetryPolicy::default();
//! let v = client.retry(&policy, || client.ping()).unwrap();
//! # let _ = v;
//! ```

use safara_chaos::Backoff;
use safara_core::Args;
use safara_server::json::Json;
use safara_server::protocol::{build_run_request_v, run_key_parts, shard_for, DEFAULT_TIMEOUT_MS};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Protocol version this client speaks. Responses to our requests
/// always carry structured `error` objects.
pub const PROTOCOL_VERSION: u8 = 2;

/// Everything that can go wrong with a request, exactly once.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport failed mid-write (connect errors surface from
    /// [`Client::connect`] as `std::io::Error` instead).
    Io(String),
    /// The server answered, but not in a shape this client understands.
    Protocol(String),
    /// The server answered with a failure status. This is the only
    /// variant [`ClientError::retryable`] can mark retryable — the
    /// server owns that contract.
    Remote {
        /// Response `status` (`error`, `timeout`, `overloaded`, ...).
        status: String,
        /// Stable machine-matchable code (`parse`, `sim`, `shed`, ...).
        code: String,
        /// Human-readable description.
        message: String,
        /// Pipeline phase provenance, when the failure had one.
        phase: Option<String>,
        /// Whether resending the identical request can succeed.
        retryable: bool,
    },
    /// The per-request deadline expired with no response. The request
    /// may still complete server-side; its late reply is discarded.
    Timeout,
    /// The connection closed (EOF or reset) before the response
    /// arrived. Subsequent requests on this client fail the same way.
    ServerGone,
}

impl ClientError {
    /// The retry contract: `true` iff the server said resending the
    /// identical request can succeed. Local timeouts and transport
    /// failures are *not* retryable through [`Client::retry`] — the
    /// request may have executed, and this client cannot know.
    pub fn retryable(&self) -> bool {
        matches!(self, ClientError::Remote { retryable: true, .. })
    }

    /// The machine-matchable error code, when the server supplied one.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Remote { code, .. } => Some(code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "transport error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote { status, code, message, retryable, .. } => write!(
                f,
                "server {status} [{code}{}]: {message}",
                if *retryable { ", retryable" } else { "" }
            ),
            ClientError::Timeout => write!(f, "deadline expired waiting for the response"),
            ClientError::ServerGone => write!(f, "connection closed before the response"),
        }
    }
}

impl std::error::Error for ClientError {}

/// How [`Client::retry`] spaces attempts: decorrelated jitter between
/// `base_ms` and `cap_ms`, at most `attempts` tries total. Seeded —
/// the same policy backs off identically on every run.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retry).
    pub attempts: u32,
    /// Lower bound for every backoff sleep, in milliseconds.
    pub base_ms: u64,
    /// Upper bound the jitter may never exceed, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 4, base_ms: 5, cap_ms: 200, seed: 0 }
    }
}

/// Shared between the caller-facing [`Client`] and its reader thread.
struct Shared {
    writer: Mutex<TcpStream>,
    /// In-flight requests: id → the channel its response routes to.
    routes: Mutex<HashMap<i64, mpsc::Sender<Json>>>,
    /// Set by the reader on EOF/reset; fails fast thereafter.
    gone: AtomicBool,
}

impl Shared {
    /// Mark the connection dead and wake every in-flight waiter by
    /// dropping its sender (their `recv` returns `Disconnected`).
    fn hang_up(&self) {
        self.gone.store(true, Ordering::SeqCst);
        self.routes.lock().expect("routes lock").clear();
    }
}

/// A connected client. All methods take `&self`, so requests from any
/// number of threads pipeline over the single connection.
pub struct Client {
    shared: Arc<Shared>,
    stream: TcpStream,
    next_id: AtomicI64,
    deadline_ms: AtomicU64,
    reader: Option<std::thread::JoinHandle<()>>,
}

/// An in-flight request: the response routes here when it arrives.
pub struct Pending {
    id: i64,
    rx: mpsc::Receiver<Json>,
    deadline: Instant,
    shared: Arc<Shared>,
}

impl Client {
    /// Connect and start the reader thread. The default per-request
    /// deadline matches the server's own
    /// (`protocol::DEFAULT_TIMEOUT_MS`) plus slack for the queue.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let shared = Arc::new(Shared {
            writer: Mutex::new(stream.try_clone()?),
            routes: Mutex::new(HashMap::new()),
            gone: AtomicBool::new(false),
        });
        let reader_stream = stream.try_clone()?;
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name("safara-client-reader".into())
            .spawn(move || read_loop(reader_stream, &reader_shared))?;
        Ok(Client {
            shared,
            stream,
            next_id: AtomicI64::new(1),
            deadline_ms: AtomicU64::new(DEFAULT_TIMEOUT_MS + 2_000),
            reader: Some(reader),
        })
    }

    /// Change the default per-request deadline.
    pub fn set_deadline(&self, deadline: Duration) {
        self.deadline_ms.store(deadline.as_millis() as u64, Ordering::Relaxed);
    }

    /// The deadline requests started now will wait under.
    pub fn deadline(&self) -> Duration {
        Duration::from_millis(self.deadline_ms.load(Ordering::Relaxed))
    }

    fn fresh_id(&self) -> i64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Send one already-serialized request line (must carry `reserved`
    /// as its `id`) and hand back the routing receiver.
    fn send(&self, reserved: i64, line: &str) -> Result<Pending, ClientError> {
        if self.shared.gone.load(Ordering::SeqCst) {
            return Err(ClientError::ServerGone);
        }
        let (tx, rx) = mpsc::channel();
        self.shared.routes.lock().expect("routes lock").insert(reserved, tx);
        let write = || -> std::io::Result<()> {
            let mut w = self.shared.writer.lock().expect("writer lock");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()
        };
        if let Err(e) = write() {
            self.shared.routes.lock().expect("routes lock").remove(&reserved);
            return Err(ClientError::Io(e.to_string()));
        }
        Ok(Pending {
            id: reserved,
            rx,
            deadline: Instant::now() + self.deadline(),
            shared: Arc::clone(&self.shared),
        })
    }

    /// Start a request from its operation fields (everything except
    /// `id` and `v`, which this client owns). Returns immediately;
    /// responses pipeline back by id.
    pub fn begin(&self, op_fields: Vec<(&str, Json)>) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        let mut fields = vec![
            ("id".to_string(), Json::Int(id)),
            ("v".to_string(), Json::Int(PROTOCOL_VERSION as i64)),
        ];
        fields.extend(op_fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        self.send(id, &Json::Obj(fields).dump())
    }

    /// Start a `run` request (lossless `bits` argument encoding).
    pub fn begin_run(
        &self,
        source: &str,
        entry: &str,
        profile: &str,
        args: &Args,
        return_arrays: bool,
    ) -> Result<Pending, ClientError> {
        let id = self.fresh_id();
        let line =
            build_run_request_v(PROTOCOL_VERSION, id, source, entry, profile, args, return_arrays);
        self.send(id, &line)
    }

    /// `ping`, blocking.
    pub fn ping(&self) -> Result<Json, ClientError> {
        self.begin(vec![("op", Json::Str("ping".into()))])?.wait()
    }

    /// `stats`, blocking. The response carries the server's counter
    /// sections (`server`, `errors_by_code`, `breaker`, `cache`, ...).
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.begin(vec![("op", Json::Str("stats".into()))])?.wait()
    }

    /// `compile`, blocking.
    pub fn compile(&self, source: &str, profile: &str) -> Result<Json, ClientError> {
        self.begin(vec![
            ("op", Json::Str("compile".into())),
            ("source", Json::Str(source.into())),
            ("profile", Json::Str(profile.into())),
        ])?
        .wait()
    }

    /// `run`, blocking.
    pub fn run(
        &self,
        source: &str,
        entry: &str,
        profile: &str,
        args: &Args,
        return_arrays: bool,
    ) -> Result<Json, ClientError> {
        self.begin_run(source, entry, profile, args, return_arrays)?.wait()
    }

    /// Call `attempt` until it succeeds, fails permanently, or the
    /// policy's attempts run out — re-sending **exactly** the failures
    /// the server marked `retryable`, spaced by seeded decorrelated
    /// jitter. The last error is returned as-is.
    ///
    /// The whole loop runs under one deadline budget (the client's
    /// [`Client::deadline`], started when `retry` is entered): every
    /// backoff sleep is clamped to what remains, and once the budget is
    /// exhausted the last *retryable* error is returned instead of
    /// sleeping on. An unclamped backoff could sleep far past the
    /// caller's deadline and surface as a late local `timeout`, hiding
    /// the server's typed, retryable verdict.
    pub fn retry<T>(
        &self,
        policy: &RetryPolicy,
        mut attempt: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut backoff = Backoff::new(policy.base_ms, policy.cap_ms, policy.seed);
        let budget_end = Instant::now() + self.deadline();
        let mut tries = 0;
        loop {
            tries += 1;
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e) if e.retryable() && tries < policy.attempts => {
                    let remaining = budget_end.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(backoff.next_ms()).min(remaining));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// One logical client over the workers of `safara-serve --shards N`:
/// a [`Client`] per shard, with every run routed by consistent hash
/// ([`safara_server::protocol::shard_for`]) of its content key
/// ([`safara_server::protocol::run_key_parts`]) — the same key the
/// server's single-flight table uses. Identical requests therefore
/// always land on the shard owning their cache partition, and shards
/// never contend on a cache line.
pub struct ShardedClient {
    shards: Vec<Client>,
    sent: Vec<AtomicU64>,
}

impl ShardedClient {
    /// Connect one client per shard address, in shard order — the
    /// order must match the `shards ADDR0 ADDR1 ...` line printed by
    /// `safara-serve --shards N`, because routing is positional.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> std::io::Result<ShardedClient> {
        if addrs.is_empty() {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "no shard addresses"));
        }
        let shards = addrs.iter().map(Client::connect).collect::<std::io::Result<Vec<_>>>()?;
        let sent = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(ShardedClient { shards, sent })
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a run request routes to.
    pub fn route(&self, source: &str, entry: &str, profile: &str, args: &Args) -> usize {
        let key = run_key_parts(source, entry, profile, None, args);
        shard_for(key, self.shards.len() as u32) as usize
    }

    /// `run`, blocking, on the shard that owns this request's key.
    pub fn run(
        &self,
        source: &str,
        entry: &str,
        profile: &str,
        args: &Args,
        return_arrays: bool,
    ) -> Result<Json, ClientError> {
        let shard = self.route(source, entry, profile, args);
        self.sent[shard].fetch_add(1, Ordering::Relaxed);
        self.shards[shard].run(source, entry, profile, args, return_arrays)
    }

    /// Per-shard `stats`, blocking, in shard order.
    pub fn stats(&self) -> Vec<Result<Json, ClientError>> {
        self.shards.iter().map(Client::stats).collect()
    }

    /// Runs this client routed to each shard, in shard order.
    pub fn per_shard_sent(&self) -> Vec<u64> {
        self.sent.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Ask every shard to shut down (best effort, in shard order).
    pub fn shutdown_all(&self) {
        for shard in &self.shards {
            if let Ok(pending) = shard.begin(vec![("op", Json::Str("shutdown".into()))]) {
                let _ = pending.wait();
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Unblock the reader (its read_line returns 0/err) and join it.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Pending {
    /// The request id this handle routes.
    pub fn id(&self) -> i64 {
        self.id
    }

    /// Block until the response arrives or the deadline expires, then
    /// interpret it: `status: ok` is `Ok`, anything else becomes a
    /// typed [`ClientError`].
    pub fn wait(self) -> Result<Json, ClientError> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(remaining) {
            Ok(v) => interpret(v),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Deregister so the reader discards the late reply.
                self.shared.routes.lock().expect("routes lock").remove(&self.id);
                Err(ClientError::Timeout)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ClientError::ServerGone),
        }
    }
}

/// Route responses by id until the connection closes, then wake every
/// in-flight waiter with [`ClientError::ServerGone`].
fn read_loop(stream: TcpStream, shared: &Shared) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(v) = Json::parse(trimmed) else { continue };
        let Some(id) = v.get("id").and_then(Json::as_i64) else { continue };
        // Remove the route: one response per id. Ids we no longer know
        // (deadline already fired) are discarded here.
        let tx = shared.routes.lock().expect("routes lock").remove(&id);
        if let Some(tx) = tx {
            let _ = tx.send(v);
        }
    }
    shared.hang_up();
}

/// Turn a response into the caller's `Result`: prefer the v2 `error`
/// object; fall back to the v1 `message`/status shape so this client
/// still types failures from a v1-only peer.
fn interpret(v: Json) -> Result<Json, ClientError> {
    let Some(status) = v.get("status").and_then(Json::as_str) else {
        return Err(ClientError::Protocol(format!("response without a status: {v}")));
    };
    if status == "ok" {
        return Ok(v);
    }
    let status = status.to_string();
    if let Some(e) = v.get("error") {
        let field = |k: &str| e.get(k).and_then(Json::as_str).map(str::to_string);
        return Err(ClientError::Remote {
            code: field("code")
                .ok_or_else(|| ClientError::Protocol(format!("error object without a code: {v}")))?,
            message: field("message").unwrap_or_default(),
            phase: field("phase"),
            retryable: e.get("retryable").and_then(Json::as_bool).unwrap_or(false),
            status,
        });
    }
    // v1 legacy shapes: `message` on `error`, bare status otherwise.
    let (code, retryable) = match status.as_str() {
        "timeout" => ("timeout", true),
        "overloaded" => ("shed", true),
        "shutting_down" => ("shutting_down", false),
        _ => ("internal", false),
    };
    Err(ClientError::Remote {
        code: code.to_string(),
        message: v.get("message").and_then(Json::as_str).unwrap_or("").to_string(),
        phase: None,
        retryable,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_server::service::EngineConfig;

    const DOUBLE: &str = "void dbl(int n, float x[n]) {\
        #pragma acc kernels copy(x)\n{\
        #pragma acc loop gang vector\n\
        for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }";

    fn serve(config: EngineConfig) -> safara_server::server::ServerHandle {
        safara_server::serve("127.0.0.1:0", config).expect("bind ephemeral port")
    }

    #[test]
    fn ping_run_and_stats_roundtrip() {
        let handle = serve(EngineConfig::default());
        let client = Client::connect(handle.addr).expect("connect");
        assert_eq!(client.ping().unwrap().get("status").and_then(Json::as_str), Some("ok"));
        let args = Args::new().i32("n", 4).array_f32("x", &[1.0, 2.0, 3.0, 4.0]);
        let v = client.run(DOUBLE, "dbl", "base", &args, true).unwrap();
        let bits: Vec<u32> = v
            .get("arrays")
            .and_then(|a| a.get("x"))
            .and_then(|x| x.get("bits"))
            .and_then(Json::as_arr)
            .expect("bits")
            .iter()
            .map(|b| b.as_i64().unwrap() as u32)
            .collect();
        let floats: Vec<f32> = bits.into_iter().map(f32::from_bits).collect();
        assert_eq!(floats, vec![2.0, 4.0, 6.0, 8.0]);
        let stats = client.stats().unwrap();
        assert_eq!(
            stats.get("server").and_then(|s| s.get("completed")).and_then(Json::as_i64),
            Some(2)
        );
        drop(client);
        handle.stop();
    }

    #[test]
    fn permanent_errors_are_typed_and_not_retried() {
        let handle = serve(EngineConfig::default());
        let client = Client::connect(handle.addr).expect("connect");
        let mut attempts = 0;
        let err = client
            .retry(&RetryPolicy::default(), || {
                attempts += 1;
                client.compile("void broken(", "base")
            })
            .unwrap_err();
        assert_eq!(attempts, 1, "parse errors are permanent");
        match err {
            ClientError::Remote { code, phase, retryable, .. } => {
                assert_eq!(code, "parse");
                assert_eq!(phase.as_deref(), Some("parse"));
                assert!(!retryable);
            }
            other => panic!("expected Remote, got {other:?}"),
        }
        drop(client);
        handle.stop();
    }

    #[test]
    fn pipelined_requests_resolve_out_of_submission_order() {
        let handle = serve(EngineConfig { workers: 2, ..EngineConfig::default() });
        let client = Client::connect(handle.addr).expect("connect");
        // A slow request first, a fast one second: waiting on the fast
        // one must not require the slow one to finish first.
        let slow = client
            .begin(vec![("op", Json::Str("sleep".into())), ("ms", Json::Int(200))])
            .unwrap();
        let fast = client.begin(vec![("op", Json::Str("ping".into()))]).unwrap();
        let t0 = Instant::now();
        assert_eq!(fast.wait().unwrap().get("status").and_then(Json::as_str), Some("ok"));
        assert!(t0.elapsed() < Duration::from_millis(150), "fast reply waited on slow");
        assert_eq!(slow.wait().unwrap().get("status").and_then(Json::as_str), Some("ok"));
        drop(client);
        handle.stop();
    }

    #[test]
    fn client_side_deadline_fires_and_late_reply_is_discarded() {
        let handle = serve(EngineConfig::default());
        let client = Client::connect(handle.addr).expect("connect");
        client.set_deadline(Duration::from_millis(50));
        let pending = client
            .begin(vec![("op", Json::Str("sleep".into())), ("ms", Json::Int(300))])
            .unwrap();
        assert_eq!(pending.wait().unwrap_err(), ClientError::Timeout);
        // The connection stays usable; the late reply routes nowhere.
        client.set_deadline(Duration::from_secs(5));
        assert_eq!(client.ping().unwrap().get("status").and_then(Json::as_str), Some("ok"));
        drop(client);
        handle.stop();
    }

    #[test]
    fn server_gone_fails_in_flight_and_subsequent_requests() {
        let handle = serve(EngineConfig::default());
        let client = Client::connect(handle.addr).expect("connect");
        assert!(client.ping().is_ok());
        // Ask the server to shut down; its goodbye races the close, so
        // accept either shape, then require ServerGone afterwards.
        let bye = client.begin(vec![("op", Json::Str("shutdown".into()))]).unwrap();
        let _ = bye.wait();
        handle.join();
        let err = loop {
            match client.ping() {
                Err(e) => break e,
                // A ping written before the FIN landed can still be
                // answered; keep going until the close is observed.
                Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        assert!(matches!(err, ClientError::ServerGone | ClientError::Io(_)), "got {err:?}");
        assert!(
            matches!(client.ping().unwrap_err(), ClientError::ServerGone | ClientError::Io(_)),
            "fails fast after the first detection"
        );
    }

    #[test]
    fn sharded_client_routes_consistently_and_partitions_the_cache() {
        let h0 = serve(EngineConfig::default());
        let h1 = serve(EngineConfig::default());
        let sharded = ShardedClient::connect(&[h0.addr, h1.addr]).expect("connect");
        assert_eq!(sharded.shards(), 2);
        // Distinct inputs spread across both shards by content key.
        let mut per_shard = [0u64; 2];
        for i in 0..8 {
            let args = Args::new().i32("n", 4).array_f32("x", &[i as f32; 4]);
            let v = sharded.run(DOUBLE, "dbl", "base", &args, false).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
            per_shard[sharded.route(DOUBLE, "dbl", "base", &args)] += 1;
        }
        assert_eq!(sharded.per_shard_sent(), per_shard.to_vec());
        assert_eq!(per_shard[0] + per_shard[1], 8);
        assert!(per_shard[0] > 0 && per_shard[1] > 0, "both shards saw work: {per_shard:?}");
        // A repeated request routes to the same shard and replays that
        // shard's cache partition — the other shard never sees the key.
        let args = Args::new().i32("n", 4).array_f32("x", &[0.0; 4]);
        let shard = sharded.route(DOUBLE, "dbl", "base", &args);
        let first = sharded.run(DOUBLE, "dbl", "base", &args, false).unwrap();
        let second = sharded.run(DOUBLE, "dbl", "base", &args, false).unwrap();
        assert_eq!(
            first.get("digests").map(Json::dump),
            second.get("digests").map(Json::dump),
            "replay is bit-identical"
        );
        let stats = sharded.stats();
        let hits = |i: usize| {
            stats[i]
                .as_ref()
                .unwrap()
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_i64)
                .unwrap()
        };
        assert!(hits(shard) >= 2, "repeats replayed shard {shard}'s cache");
        sharded.shutdown_all();
        drop(sharded);
        h0.join();
        h1.join();
    }

    #[test]
    fn retry_resends_exactly_retryable_failures_until_success() {
        use safara_core::chaos::{FaultAction, FaultPlan, Fire, InjectionPoint};
        // The first two simulations fail with a retryable `sim` error;
        // the third identical attempt succeeds.
        let plan =
            FaultPlan::seeded(7).with(InjectionPoint::Sim, FaultAction::Fail, Fire::First(2));
        let handle = serve(EngineConfig { fault_plan: Arc::new(plan), ..EngineConfig::default() });
        let client = Client::connect(handle.addr).expect("connect");
        let args = Args::new().i32("n", 4).array_f32("x", &[1.0; 4]);
        let mut attempts = 0;
        let v = client
            .retry(&RetryPolicy { attempts: 5, base_ms: 1, cap_ms: 5, seed: 42 }, || {
                attempts += 1;
                client.run(DOUBLE, "dbl", "base", &args, false)
            })
            .expect("third attempt succeeds");
        assert_eq!(attempts, 3);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        // And the policy gives up: a plan that always fails exhausts
        // its attempts with the typed error intact.
        let always =
            FaultPlan::seeded(7).with(InjectionPoint::Sim, FaultAction::Fail, Fire::Prob(1.0));
        let handle2 =
            serve(EngineConfig { fault_plan: Arc::new(always), ..EngineConfig::default() });
        let client2 = Client::connect(handle2.addr).expect("connect");
        let mut attempts2 = 0;
        let err = client2
            .retry(&RetryPolicy { attempts: 3, base_ms: 1, cap_ms: 5, seed: 42 }, || {
                attempts2 += 1;
                client2.run(DOUBLE, "dbl", "base", &args, false)
            })
            .unwrap_err();
        assert_eq!(attempts2, 3);
        assert_eq!(err.code(), Some("sim"));
        assert!(err.retryable(), "gave up while the error stayed retryable");
        drop(client);
        drop(client2);
        handle.stop();
        handle2.stop();
    }
}
