//! Chaos acceptance tests: the robustness layer under seeded fault
//! injection, end to end.
//!
//! Three escalating setups:
//!
//! 1. a seed sweep (0..30) driving an in-process [`Engine`] through a
//!    probabilistic fault plan — parse failures, simulator faults,
//!    injected delays and bounded hangs, worker panics, dropped
//!    replies, poisoned cache entries — asserting, for **every** seed,
//!    that nothing deadlocks, the accounting invariant
//!    `submitted == completed + errors + timed_out + timed_out_late + shed`
//!    holds exactly, and every `ok` response is byte-identical to the
//!    same request against a fault-free server;
//! 2. 4 TCP clients × 50 requests each against a faulty server, every
//!    failure retried through the typed `retryable` contract until it
//!    succeeds — proving retry-to-success and bit-exact results under
//!    concurrency;
//! 3. the circuit breaker observed from the client side: trip, reject
//!    with a typed retryable error, recover after cooldown.

use safara_client::{Client, ClientError, RetryPolicy};
use safara_core::chaos::{FaultAction, FaultPlan, Fire, InjectionPoint};
use safara_core::Args;
use safara_server::json::Json;
use safara_server::protocol::{build_run_request_v, parse_request};
use safara_server::service::{Engine, EngineConfig};
use safara_server::Submit;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

const SCALE: &str = r#"
void scale(int n, float alpha, float x[n]) {
  #pragma acc kernels copy(x)
  {
    #pragma acc loop gang vector
    for (int i = 0; i < n; i++) { x[i] = x[i] * alpha + 1.0f; }
  }
}"#;

const SUMSQ: &str = r#"
void sumsq(int n, const float x[n], float s) {
  #pragma acc kernels copyin(x)
  {
    #pragma acc loop gang vector reduction(+:s)
    for (int i = 0; i < n; i++) { s += x[i] * x[i]; }
  }
}"#;

struct Combo {
    source: &'static str,
    entry: &'static str,
    profile: &'static str,
    args: Args,
}

fn combos() -> Vec<Combo> {
    vec![
        Combo {
            source: SCALE,
            entry: "scale",
            profile: "base",
            args: Args::new().i32("n", 32).f32("alpha", 1.5).array_f32(
                "x",
                &(0..32).map(|i| i as f32 * 0.25).collect::<Vec<_>>(),
            ),
        },
        Combo {
            source: SCALE,
            entry: "scale",
            profile: "safara_only",
            args: Args::new().i32("n", 32).f32("alpha", -0.5).array_f32(
                "x",
                &(0..32).map(|i| (i as f32 * 0.4).sin()).collect::<Vec<_>>(),
            ),
        },
        Combo {
            source: SUMSQ,
            entry: "sumsq",
            profile: "safara_clauses",
            args: Args::new().i32("n", 48).f32("s", 0.0).array_f32(
                "x",
                &(0..48).map(|i| (i as f32 * 0.125).cos()).collect::<Vec<_>>(),
            ),
        },
    ]
}

/// The per-seed request schedule: the same ids and lines are replayed
/// against a fault-free engine to obtain the expected responses.
fn schedule(combos: &[Combo]) -> Vec<(i64, String)> {
    let mut lines = Vec::new();
    let mut id = 0i64;
    for round in 0..10 {
        for c in combos {
            id += 1;
            lines.push((id, build_run_request_v(2, id, c.source, c.entry, c.profile, &c.args, round % 2 == 0)));
        }
        id += 1;
        lines.push((id, format!(r#"{{"id":{id},"v":2,"op":"ping"}}"#)));
    }
    lines
}

/// Run the schedule through an engine; `Ok` entries are response
/// lines, `Err(())` marks a reply the server dropped (injected client
/// hangup). A response not arriving within 10 s is a deadlock — fail.
fn drive(engine: &Engine, lines: &[(i64, String)]) -> Vec<Result<String, ()>> {
    let mut rxs = Vec::new();
    for (id, line) in lines {
        let (tx, rx) = mpsc::channel();
        match engine.submit(parse_request(line).unwrap(), tx) {
            Submit::Queued => rxs.push((*id, Err(()), Some(rx))),
            Submit::Rejected { response, .. } => rxs.push((*id, Ok(response), None)),
        }
    }
    rxs.into_iter()
        .map(|(id, immediate, rx)| match rx {
            None => immediate,
            Some(rx) => match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(line) => Ok(line),
                // The sender is held by the engine until the reply is
                // written or dropped; a disconnect IS the drop. A raw
                // timeout with the sender still alive would be a hang.
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    panic!("request {id} hung: no reply and no hangup within 10s")
                }
            },
        })
        .collect()
}

fn assert_accounting(shared: &safara_server::service::EngineShared) {
    let n = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    assert_eq!(
        n(&shared.submitted),
        n(&shared.completed)
            + n(&shared.errors)
            + n(&shared.timed_out)
            + n(&shared.timed_out_late)
            + n(&shared.shed)
            + n(&shared.coalesced),
        "accounting invariant"
    );
}

#[test]
fn seed_sweep_keeps_accounting_exact_and_ok_responses_bit_identical() {
    let combos = combos();
    let lines = schedule(&combos);

    // The expected responses: the identical schedule against a
    // fault-free engine. Everything must succeed there.
    let reference = Engine::start(EngineConfig {
        workers: 2,
        queue_depth: 64,
        verify_cache: true,
        ..EngineConfig::default()
    });
    let expected: HashMap<i64, String> = lines
        .iter()
        .map(|(id, _)| *id)
        .zip(drive(&reference, &lines))
        .map(|(id, r)| (id, r.expect("fault-free run drops nothing")))
        .collect();
    for line in expected.values() {
        assert!(line.contains(r#""status":"ok""#), "fault-free run all ok: {line}");
    }
    reference.shutdown();

    for seed in 0..31u64 {
        // Register-allocator faults are deliberately absent: a forced
        // spill legitimately changes the winning allocation, so `ok`
        // responses would no longer be byte-comparable. Those points
        // are covered by the core pipeline tests instead.
        let plan = FaultPlan::seeded(seed)
            .with_max_delay_ms(25)
            .with(InjectionPoint::Parse, FaultAction::Fail, Fire::Prob(0.04))
            .with(InjectionPoint::Sim, FaultAction::Fail, Fire::Prob(0.10))
            .with(InjectionPoint::Sim, FaultAction::Delay { ms: 15 }, Fire::Prob(0.08))
            .with(InjectionPoint::Sim, FaultAction::Hang, Fire::Prob(0.02))
            .with(InjectionPoint::WorkerJob, FaultAction::Panic, Fire::Prob(0.04))
            .with(InjectionPoint::CacheRead, FaultAction::Poison, Fire::Prob(0.06))
            .with(InjectionPoint::Reply, FaultAction::Hangup, Fire::Prob(0.04));
        let engine = Engine::start(EngineConfig {
            workers: 3,
            queue_depth: 64,
            fault_plan: Arc::new(plan),
            verify_cache: true,
            ..EngineConfig::default()
        });
        let outcomes = drive(&engine, &lines);

        let mut dropped = 0u64;
        let mut ok = 0u64;
        for ((id, _), outcome) in lines.iter().zip(&outcomes) {
            match outcome {
                Err(()) => dropped += 1,
                Ok(line) if line.contains(r#""status":"ok""#) => {
                    ok += 1;
                    assert_eq!(line, &expected[id], "seed {seed} id {id}: ok response drifted");
                }
                Ok(line) => {
                    // Failures must be v2-structured with a known code.
                    let v = Json::parse(line).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                    let code = v
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str)
                        .unwrap_or_else(|| panic!("seed {seed} untyped failure: {line}"));
                    assert!(
                        safara_server::service::ERROR_CODES.contains(&code)
                            || code == "timeout"
                            || code == "shutting_down",
                        "seed {seed} unknown code {code}"
                    );
                }
            }
        }
        let shared = Arc::clone(engine.shared());
        // Joining the (possibly respawned) pool proves no worker hung.
        engine.shutdown();
        assert_accounting(&shared);
        assert_eq!(
            shared.replies_dropped.load(Ordering::Relaxed),
            dropped,
            "seed {seed}: every missing reply is an accounted hangup"
        );
        assert_eq!(
            shared.worker_panics.load(Ordering::Relaxed),
            shared.worker_respawns.load(Ordering::Relaxed),
            "seed {seed}: every panic respawned a worker"
        );
        assert!(ok > 0, "seed {seed}: the plan must not starve the engine entirely");
    }
}

#[test]
fn four_clients_fifty_requests_each_retry_every_fault_to_success() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 50;
    let combos = combos();

    // Expected digests straight from the core pipeline, no server.
    let dev = safara_core::gpusim::device::DeviceConfig::k20xm();
    let reference: Vec<HashMap<String, String>> = combos
        .iter()
        .map(|c| {
            let config =
                safara_server::protocol::resolve_profile(c.profile).expect("known profile");
            let program = safara_core::compile(c.source, &config).expect("compiles");
            let mut args = c.args.clone();
            safara_core::run_compiled(&program, c.entry, &mut args, &dev, None).expect("runs");
            args.arrays
                .iter()
                .map(|(k, a)| (k.to_string(), safara_server::protocol::digest(a)))
                .collect()
        })
        .collect();

    let plan = FaultPlan::seeded(11)
        .with(InjectionPoint::Sim, FaultAction::Fail, Fire::Prob(0.15))
        .with(InjectionPoint::WorkerJob, FaultAction::Panic, Fire::Prob(0.04));
    let handle = safara_server::serve(
        "127.0.0.1:0",
        EngineConfig {
            workers: 3,
            queue_depth: 256,
            fault_plan: Arc::new(plan),
            ..EngineConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let combos = &combos;
                let reference = &reference;
                s.spawn(move || {
                    let client = Client::connect(addr).expect("connect");
                    let policy =
                        RetryPolicy { attempts: 25, base_ms: 1, cap_ms: 10, seed: t as u64 };
                    for i in 0..PER_CLIENT {
                        let idx = (t + i) % combos.len();
                        let c = &combos[idx];
                        let v = client
                            .retry(&policy, || {
                                client.run(c.source, c.entry, c.profile, &c.args, false)
                            })
                            .unwrap_or_else(|e| panic!("client {t} req {i}: gave up on {e}"));
                        let digests = v.get("digests").expect("run response digests");
                        for (name, want) in &reference[idx] {
                            assert_eq!(
                                digests.get(name.as_str()).and_then(Json::as_str),
                                Some(want.as_str()),
                                "client {t} req {i} array `{name}`"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let server = stats.get("server").expect("server section");
    let counter = |name: &str| server.get(name).and_then(Json::as_i64).expect(name);
    assert_eq!(
        counter("submitted"),
        counter("completed")
            + counter("errors")
            + counter("timed_out")
            + counter("timed_out_late")
            + counter("shed")
            + counter("coalesced"),
        "{server}"
    );
    // Retries inflate `submitted` past the 200 user-level requests by
    // exactly the number of injected failures.
    assert!(counter("errors") > 0, "the seeded plan fired: {server}");
    // Every user-level request eventually succeeded, each as either a
    // single-flight leader (counted `completed`) or a coalesced waiter
    // that received a leader's `ok`. Waiters that received a leader's
    // *error* retried, so `coalesced` can exceed its ok subset — hence
    // bounds, not equality (stats is answered inline, outside both).
    let wanted = (CLIENTS * PER_CLIENT) as i64;
    assert!(
        counter("completed") <= wanted && counter("completed") + counter("coalesced") >= wanted,
        "{server}"
    );
    assert_eq!(counter("worker_panics"), counter("worker_respawns"), "{server}");
    let by_code = stats.get("errors_by_code").expect("errors_by_code section");
    assert!(by_code.get("sim").and_then(Json::as_i64).unwrap_or(0) > 0, "{by_code}");
    drop(client);
    handle.stop();
}

#[test]
fn retry_backoff_is_clamped_to_the_deadline_budget() {
    // Every simulation fails retryably, and an injected delay makes
    // each attempt cost ~50 ms. The retry policy's backoff (200–400 ms
    // per sleep, up to 50 attempts) would sleep for tens of seconds —
    // far past the client's 150 ms deadline — if sleeps were not
    // clamped to the remaining budget. The regression: an unclamped
    // loop converts the server's typed retryable error into a late
    // local timeout (or a multi-second stall).
    let plan = FaultPlan::seeded(13)
        .with(InjectionPoint::WorkerJob, FaultAction::Delay { ms: 50 }, Fire::Prob(1.0))
        .with(InjectionPoint::Sim, FaultAction::Fail, Fire::Prob(1.0));
    let handle = safara_server::serve(
        "127.0.0.1:0",
        EngineConfig { workers: 1, fault_plan: Arc::new(plan), ..EngineConfig::default() },
    )
    .expect("bind ephemeral port");
    let client = Client::connect(handle.addr).expect("connect");
    client.set_deadline(Duration::from_millis(150));
    let policy = RetryPolicy { attempts: 50, base_ms: 200, cap_ms: 400, seed: 3 };
    let args = Args::new().i32("n", 4).f32("alpha", 1.5).array_f32("x", &[1.0; 4]);
    let mut attempts = 0u32;
    let start = std::time::Instant::now();
    let err = client
        .retry(&policy, || {
            attempts += 1;
            client.run(SCALE, "scale", "base", &args, false)
        })
        .unwrap_err();
    let elapsed = start.elapsed();
    // The budget is exhausted quickly and the *last retryable error*
    // comes back — not a timeout, and not 49 backoff sleeps later.
    assert_eq!(err.code(), Some("sim"), "typed verdict survives: {err}");
    assert!(err.retryable(), "the server's retry contract is preserved");
    assert!(attempts < 10, "budget stopped the loop, not the attempt cap ({attempts})");
    assert!(
        elapsed < Duration::from_secs(2),
        "clamped backoff cannot outlive the deadline by much: {elapsed:?}"
    );
    drop(client);
    handle.stop();
}

#[test]
fn breaker_trips_and_recovers_observed_from_the_client() {
    let handle = safara_server::serve(
        "127.0.0.1:0",
        EngineConfig {
            workers: 1,
            queue_depth: 16,
            breaker_threshold: 2,
            breaker_cooldown_ms: 100,
            ..EngineConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let client = Client::connect(handle.addr).expect("connect");

    for _ in 0..2 {
        let err = client.compile("void broken(", "base").unwrap_err();
        assert_eq!(err.code(), Some("parse"));
        assert!(!err.retryable());
    }
    // The breaker is now open for `base`: even a good program is
    // refused, with the retryable contract telling the client to wait.
    let err = client.compile("void fine() {}", "base").unwrap_err();
    match &err {
        ClientError::Remote { code, retryable, .. } => {
            assert_eq!(code, "breaker_open");
            assert!(retryable);
        }
        other => panic!("expected Remote, got {other:?}"),
    }
    // Retrying with backoff rides out the cooldown; the half-open
    // probe succeeds and closes the breaker.
    let policy = RetryPolicy { attempts: 6, base_ms: 60, cap_ms: 200, seed: 5 };
    let v = client
        .retry(&policy, || client.compile("void fine() {}", "base"))
        .expect("recovers after cooldown");
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    // And it stays closed.
    assert!(client.compile("void fine() {}", "base").is_ok());

    let stats = client.stats().expect("stats");
    let breaker = stats.get("breaker").expect("breaker section");
    assert_eq!(breaker.get("trips").and_then(Json::as_i64), Some(1), "{breaker}");
    assert!(breaker.get("rejections").and_then(Json::as_i64).unwrap_or(0) >= 1, "{breaker}");
    assert_eq!(
        breaker.get("open_profiles").and_then(Json::as_i64),
        Some(0),
        "recovered: {breaker}"
    );
    drop(client);
    handle.stop();
}
