//! Golden pin for the `dim` clause's offset grouping, now that the
//! hand-written address arithmetic in codegen and the e-graph's
//! factoring rewrite share one implementation
//! (`safara_ir::offset::row_major_offset`).
//!
//! The pin is a before/after pair per dim-using fig7 workload:
//!
//! * **before** (`small`, dim ignored): every array reference emits its
//!   own dope arithmetic;
//! * **after** (`small_dim`): grouped arrays share one offset
//!   computation, so the kernel must strictly shrink;
//! * the *after* lowering is frozen by an FNV-1a digest of the VIR —
//!   any change to the shared offset builder that alters emitted code
//!   trips this test.
//!
//! If an intentional codegen change moves the digests, rerun with
//! `--nocapture` and copy the printed table back in.

use safara_core::{compile, CompilerConfig};
use safara_workloads::spec_suite;

/// FNV-1a over the debug rendering of a kernel's instruction stream —
/// stable across runs (no pointers or hash-map iteration in `Inst`'s
/// `Debug`).
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// (workload, kernel, insts without dim, insts with dim, fnv64 of the
/// dim-honored VIR).
const GOLDEN: &[(&str, &str, usize, usize, u64)] = &[
    ("355.seismic", "seismic_step_k0", 134, 100, 0xcfb641a5ecc164ad),
    ("355.seismic", "seismic_step_k1", 134, 100, 0xcfb641a5ecc164ad),
    ("355.seismic", "seismic_step_k2", 136, 90, 0x7d9cb7d14f28dee5),
    ("355.seismic", "seismic_step_k3", 152, 110, 0xe417099fdac9bc77),
    ("355.seismic", "seismic_step_k4", 91, 73, 0xd1ca7a055cfa3814),
    ("355.seismic", "seismic_step_k5", 92, 74, 0xbe73b9867c4ea318),
    ("355.seismic", "seismic_step_k6", 94, 76, 0x65994e93d2a45d41),
    ("356.sp", "sp_step_k0", 61, 59, 0x179788e7441aacad),
    ("356.sp", "sp_step_k1", 71, 61, 0xcb4edac2979b6f68),
    ("356.sp", "sp_step_k2", 62, 60, 0x1df0ffcf172a5281),
    ("356.sp", "sp_step_k3", 72, 54, 0x609c7a1968a12ff6),
    ("356.sp", "sp_step_k4", 95, 61, 0xde863edf9d32582f),
    ("356.sp", "sp_step_k5", 50, 48, 0x172b407ebf9a377f),
    ("356.sp", "sp_step_k6", 88, 67, 0x80de01e124759bc0),
    ("356.sp", "sp_step_k7", 150, 92, 0x805ee4454febce79),
    ("356.sp", "sp_step_k8", 94, 70, 0xe67a99be8d3562d9),
    ("356.sp", "sp_step_k9", 53, 51, 0xc1e34744aee38c27),
    ("363.swim", "swim_step_k0", 142, 102, 0xfb01d82c9ff1986b),
];

#[test]
fn dim_grouping_is_pinned_on_fig7_kernels() {
    let before_cfg = CompilerConfig::small();
    let after_cfg = CompilerConfig::small_dim();
    let mut actual: Vec<(String, String, usize, usize, u64)> = Vec::new();
    for w in spec_suite() {
        if !w.uses_dim() {
            continue;
        }
        let src = w.source();
        let before = compile(&src, &before_cfg).expect("compile without dim");
        let after = compile(&src, &after_cfg).expect("compile with dim");
        let (bf, af) = (
            before.function(w.entry()).unwrap(),
            after.function(w.entry()).unwrap(),
        );
        assert_eq!(bf.kernels.len(), af.kernels.len(), "{}", w.name());
        for (bk, ak) in bf.kernels.iter().zip(&af.kernels) {
            actual.push((
                w.name().to_string(),
                ak.kernel.name.clone(),
                bk.kernel.vir.insts.len(),
                ak.kernel.vir.insts.len(),
                fnv64(&format!("{:?}", ak.kernel.vir.insts)),
            ));
        }
    }
    let rendered = actual
        .iter()
        .map(|(w, k, b, a, h)| format!("    (\"{w}\", \"{k}\", {b}, {a}, {h:#x}),"))
        .collect::<Vec<_>>()
        .join("\n");
    println!("golden table:\n{rendered}");
    assert!(!actual.is_empty(), "no dim-using fig7 workloads found");
    // Grouping must genuinely share work: each dim-using kernel shrinks.
    for (w, k, b, a, _) in &actual {
        assert!(a < b, "{w}/{k}: dim grouping did not shrink the kernel ({a} vs {b})");
    }
    assert_eq!(actual.len(), GOLDEN.len(), "kernel set changed:\n{rendered}");
    for ((w, k, b, a, h), (gw, gk, gb, ga, gh)) in actual.iter().zip(GOLDEN) {
        assert_eq!(
            (w.as_str(), k.as_str(), *b, *a, *h),
            (*gw, *gk, *gb, *ga, *gh),
            "golden drift; refreshed table:\n{rendered}"
        );
    }
}
