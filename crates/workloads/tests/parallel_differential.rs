//! Block-parallel differential coverage: the fig7 (SPEC-like) suite
//! must behave *identically* — reports, output buffers (raw bytes, so
//! f32 comparisons are bitwise), checker verdicts and injected-fault
//! errors — at every sim-thread count, under every engine.
//!
//! Both knobs are thread-local scopes ([`gpusim::with_engine`],
//! [`gpusim::with_sim_threads`]), so these tests are safe under the
//! parallel test runner; the one piece of process-global state the
//! suite mutates (the superblock hot threshold) is serialized by
//! `THRESHOLD_LOCK`.

use safara_core::chaos::{FaultPlan, FaultSpec};
use safara_core::gpusim::{
    self, set_superblock_threshold, LaunchCache, DEFAULT_SUPERBLOCK_THRESHOLD,
};
use safara_core::gpusim::{Engine, LaunchConfig};
use safara_core::{compile, compile_and_run_with_faults, CompilerConfig, DeviceConfig};
use safara_workloads::{run_workload_cached, spec_suite, Scale, Workload};
use std::sync::Mutex;

static THRESHOLD_LOCK: Mutex<()> = Mutex::new(());

const ENGINES: [Engine; 3] = [Engine::Reference, Engine::Decoded, Engine::Superblock];

/// Compile + run + check one workload under an engine × thread-count
/// pair, returning everything observable: the run report, the final
/// host arrays, and the checker verdict.
fn observe(
    w: &dyn Workload,
    engine: Engine,
    sim_threads: u32,
) -> (safara_core::RunReport, safara_core::Args, Result<(), String>) {
    gpusim::with_engine(engine, || {
        gpusim::with_sim_threads(sim_threads, || {
            let config = CompilerConfig::safara_clauses();
            let dev = DeviceConfig::k20xm();
            let program = compile(&w.source(), &config).expect("compile");
            let mut args = w.args(Scale::Test);
            let report = program.run(w.entry(), &mut args, &dev).expect("run");
            let verdict = w.check(&args, Scale::Test);
            (report, args, verdict)
        })
    })
}

/// The whole suite, every engine, sim-threads 1 / 2 / auto: bitwise the
/// same observables as the plain (no-override) serial run. The
/// `sim_threads = 1` column also pins that an explicit 1 is the serial
/// path, not a one-worker pool with different behavior.
#[test]
fn fig7_suite_byte_identical_across_sim_threads_and_engines() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    for w in spec_suite() {
        for engine in ENGINES {
            // Baseline: no thread override at all (process default).
            let (rep0, args0, chk0) = observe(w.as_ref(), engine, 1);
            assert!(chk0.is_ok(), "{} [{engine:?}]: serial checker: {chk0:?}", w.name());
            for threads in [2u32, 0 /* auto */] {
                let (rep, args, chk) = observe(w.as_ref(), engine, threads);
                let tag = format!("{} [{engine:?}] sim_threads={threads}", w.name());
                assert_eq!(chk0, chk, "{tag}: checker verdict vs serial");
                assert_eq!(rep0, rep, "{tag}: RunReport vs serial");
                assert_eq!(args0, args, "{tag}: output buffers vs serial");
            }
        }
    }
}

/// The atomics-heavy workloads (EP and CG both finish with f32 atomic
/// reductions, where merge *order* changes the bits) at deliberately
/// awkward worker counts. This is the test that fails loudly if the
/// ordered deferred-atomic reduction ever regresses to merge-on-arrival.
#[test]
fn atomic_reductions_bitwise_stable_at_any_worker_count() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    let suite = spec_suite();
    let atomics: Vec<_> =
        suite.iter().filter(|w| ["352.ep", "354.cg"].contains(&w.name())).collect();
    assert_eq!(atomics.len(), 2, "expected the EP and CG reduction workloads in the suite");
    for w in atomics {
        for engine in ENGINES {
            let (rep1, args1, chk1) = observe(w.as_ref(), engine, 1);
            assert!(chk1.is_ok(), "{} [{engine:?}]: serial checker: {chk1:?}", w.name());
            for threads in [2u32, 3, 8] {
                let (rep, args, _) = observe(w.as_ref(), engine, threads);
                let tag = format!("{} [{engine:?}] sim_threads={threads}", w.name());
                assert_eq!(
                    args1, args,
                    "{tag}: atomic reduction bits differ from serial — the \
                     block-ordered deferred-atomic replay has regressed"
                );
                assert_eq!(rep1, rep, "{tag}: RunReport vs serial");
            }
        }
    }
}

/// Injected faults inside a (possibly parallel) launch must surface the
/// same typed error at every thread count: a 10-seed sweep with a
/// probabilistic `sim` fault (plus a deterministic one) must produce
/// per-seed outcomes — code/message/retryable or success — identical
/// across sim-threads 1 and 2, for every engine. No deadlocked joins,
/// no poisoned state: the pool must stay usable after each failure.
#[test]
fn chaos_sweep_errors_identical_across_sim_threads() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    let w = &spec_suite()[0];
    let config = CompilerConfig::safara_clauses();
    let dev = DeviceConfig::k20xm();
    let outcome =
        |engine: Engine, threads: u32, seed: u64, spec: &str| -> Result<(), (String, String, bool)> {
            gpusim::with_engine(engine, || {
                gpusim::with_sim_threads(threads, || {
                    let plan = FaultPlan::seeded(seed).with_spec(FaultSpec::parse(spec).unwrap());
                    let mut args = w.args(Scale::Test);
                    compile_and_run_with_faults(
                        &w.source(),
                        w.entry(),
                        &config,
                        &mut args,
                        &dev,
                        None,
                        &plan,
                    )
                    .map(|_| ())
                    .map_err(|e| (e.code().to_string(), e.to_string(), e.retryable()))
                })
            })
        };
    for engine in ENGINES {
        for seed in 1..=10u64 {
            for spec in ["sim:fail:0.5", "sim:fail:1"] {
                let serial = outcome(engine, 1, seed, spec);
                let pooled = outcome(engine, 2, seed, spec);
                assert_eq!(
                    serial, pooled,
                    "[{engine:?}] seed {seed} spec {spec}: serial vs sim_threads=2"
                );
            }
        }
        // The deterministic spec must actually fail, with the typed
        // simulator code, under the pool — and the pool must still run
        // cleanly afterwards (no deadlock, no poisoned cache).
        let (code, _, retryable) =
            outcome(engine, 2, 1, "sim:fail:1").expect_err("sim:fail:1 must fail");
        assert_eq!(code, "sim");
        assert!(retryable);
        outcome(engine, 2, 1, "sim:fail:0").expect("pool must stay usable after a failure");
    }
}

/// The sim-thread count must never leak into the memo content key:
/// `LaunchConfig`'s `Debug` form (which the launch key hashes) omits
/// it, and a cache warmed by a serial run replays — pure hits, zero
/// misses — under a parallel run of the same workload.
#[test]
fn memo_content_hash_independent_of_sim_threads() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    let plain = LaunchConfig::d1(2, 64);
    let with_threads = LaunchConfig::d1(2, 64).with_sim_threads(7);
    let dbg = format!("{with_threads:?}");
    assert_eq!(format!("{plain:?}"), dbg, "Debug form (= memo key input) must match");
    assert!(!dbg.contains("sim_threads"), "sim_threads leaked into the hashed Debug form: {dbg}");

    let w = &spec_suite()[0];
    let config = CompilerConfig::safara_clauses();
    let dev = DeviceConfig::k20xm();
    let mut cache = LaunchCache::new();
    gpusim::with_sim_threads(1, || {
        run_workload_cached(w.as_ref(), &config, Scale::Test, &dev, &mut cache)
    })
    .expect("serial warm run");
    let (h0, m0) = (cache.hits, cache.misses);
    assert!(m0 > 0, "warm run must have populated the cache");
    gpusim::with_sim_threads(4, || {
        run_workload_cached(w.as_ref(), &config, Scale::Test, &dev, &mut cache)
    })
    .expect("parallel cached run");
    assert_eq!(cache.misses, m0, "a parallel run must not re-key any launch");
    assert!(cache.hits > h0, "the parallel run must replay from the serial-warmed cache");
}
