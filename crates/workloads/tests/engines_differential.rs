//! Three-way engine differential coverage: the fig7 (SPEC-like) suite
//! must behave *identically* — reports, output buffers, checker verdicts
//! and injected-fault errors — under the reference tree-walker, the
//! decoded engine, and the profile-guided superblock engine.
//!
//! The engine is selected through the thread-local
//! [`gpusim::with_engine`] scope, so these tests are safe under the
//! parallel test runner; the one piece of process-global state the
//! suite mutates (the superblock hot threshold) is serialized by
//! `THRESHOLD_LOCK`.

use safara_core::chaos::{FaultPlan, FaultSpec};
use safara_core::gpusim::{
    self, fusion_counters, set_superblock_threshold, Engine, DEFAULT_SUPERBLOCK_THRESHOLD,
};
use safara_core::{compile, compile_and_run_with_faults, CompilerConfig, DeviceConfig};
use safara_workloads::{spec_suite, Scale, Workload};
use std::sync::Mutex;

static THRESHOLD_LOCK: Mutex<()> = Mutex::new(());

/// Compile + run + check one workload, returning everything observable:
/// the run report, the final host arrays, and the checker verdict.
fn observe(
    w: &dyn Workload,
    engine: Engine,
) -> (safara_core::RunReport, safara_core::Args, Result<(), String>) {
    gpusim::with_engine(engine, || {
        let config = CompilerConfig::safara_clauses();
        let dev = DeviceConfig::k20xm();
        let program = compile(&w.source(), &config).expect("compile");
        let mut args = w.args(Scale::Test);
        let report = program.run(w.entry(), &mut args, &dev).expect("run");
        let verdict = w.check(&args, Scale::Test);
        (report, args, verdict)
    })
}

#[test]
fn fig7_suite_byte_identical_across_engines() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    let before = fusion_counters();
    for w in spec_suite() {
        let (rep_ref, args_ref, chk_ref) = observe(w.as_ref(), Engine::Reference);
        let (rep_dec, args_dec, chk_dec) = observe(w.as_ref(), Engine::Decoded);
        let (rep_sb, args_sb, chk_sb) = observe(w.as_ref(), Engine::Superblock);
        assert!(chk_ref.is_ok(), "{}: reference checker: {chk_ref:?}", w.name());
        assert_eq!(chk_ref, chk_dec, "{}: checker verdict ref vs decoded", w.name());
        assert_eq!(chk_ref, chk_sb, "{}: checker verdict ref vs superblock", w.name());
        assert_eq!(rep_ref, rep_dec, "{}: RunReport reference vs decoded", w.name());
        assert_eq!(rep_dec, rep_sb, "{}: RunReport decoded vs superblock", w.name());
        assert_eq!(args_ref, args_dec, "{}: output buffers reference vs decoded", w.name());
        assert_eq!(args_dec, args_sb, "{}: output buffers decoded vs superblock", w.name());
    }
    // The identity above must come from the real fused path, not from
    // wholesale delegation: the sweep must have built superblocks and
    // executed lane-vectorized superinstructions.
    let after = fusion_counters();
    assert!(after.launches > before.launches, "superblock engine never entered");
    assert!(after.superblocks > before.superblocks, "no superblocks were built");
    assert!(after.vector_execs > before.vector_execs, "no lockstep superinstructions ran");
    assert!(after.scalar_execs > before.scalar_execs, "no hoisted superinstructions ran");
}

/// Shared-memory spilling is a *timing* reinterpretation layered on the
/// same engine-agnostic spill traffic, so the three engines must stay
/// byte-identical under it too: the fig7 suite compiled with the RegDem
/// profile (tight 40-register cap, `SpillTarget::Shared`) must produce
/// identical reports, buffers, and verdicts everywhere — and the tight
/// cap must actually force shared spills somewhere, or the test proves
/// nothing.
#[test]
fn fig7_suite_byte_identical_across_engines_with_shared_spilling() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    let config = CompilerConfig::safara_regdem();
    let dev = DeviceConfig::k20xm();
    let observe = |w: &dyn Workload, engine: Engine| {
        gpusim::with_engine(engine, || {
            let program = compile(&w.source(), &config).expect("compile");
            let mut args = w.args(Scale::Test);
            let report = program.run(w.entry(), &mut args, &dev).expect("run");
            let verdict = w.check(&args, Scale::Test);
            (report, args, verdict)
        })
    };
    let mut shared_spills = 0u64;
    for w in spec_suite() {
        let (rep_ref, args_ref, chk_ref) = observe(w.as_ref(), Engine::Reference);
        let (rep_dec, args_dec, chk_dec) = observe(w.as_ref(), Engine::Decoded);
        let (rep_sb, args_sb, chk_sb) = observe(w.as_ref(), Engine::Superblock);
        assert!(chk_ref.is_ok(), "{}: reference checker: {chk_ref:?}", w.name());
        assert_eq!(chk_ref, chk_dec, "{}: checker verdict ref vs decoded", w.name());
        assert_eq!(chk_ref, chk_sb, "{}: checker verdict ref vs superblock", w.name());
        assert_eq!(rep_ref, rep_dec, "{}: RunReport reference vs decoded", w.name());
        assert_eq!(rep_dec, rep_sb, "{}: RunReport decoded vs superblock", w.name());
        assert_eq!(args_ref, args_dec, "{}: output buffers reference vs decoded", w.name());
        assert_eq!(args_dec, args_sb, "{}: output buffers decoded vs superblock", w.name());
        shared_spills += rep_ref.kernels.iter().map(|k| k.stats.shared_accesses).sum::<u64>();
        // Shared spilling redirects traffic, it never invents local
        // traffic: under this profile compiled kernels report none.
        for k in &rep_ref.kernels {
            assert!(
                k.stats.shared_accesses == 0 || k.stats.local_accesses == 0,
                "{}: kernel `{}` mixes shared and local spill traffic",
                w.name(),
                k.name
            );
        }
    }
    assert!(shared_spills > 0, "the 40-register cap never forced a shared spill");
}

/// Equality saturation only rewrites in the two's-complement integer
/// ring, so the extracted program must be **bitwise identical in
/// simulation output** to the unsaturated one — on every workload of
/// the fig7 suite, under every engine. Two profile pairs are compared:
/// plain SAFARA (factoring/strength-reduction territory) and the
/// all-clauses profile with saturation, which additionally exercises
/// the `small`-guarded narrowing and `dim`-group factoring paths.
#[test]
fn saturated_output_bitwise_identical_to_unsaturated() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    let dev = DeviceConfig::k20xm();
    let observe = |w: &dyn Workload, config: &CompilerConfig, engine: Engine| {
        gpusim::with_engine(engine, || {
            let program = compile(&w.source(), config).expect("compile");
            let mut args = w.args(Scale::Test);
            program.run(w.entry(), &mut args, &dev).expect("run");
            let verdict = w.check(&args, Scale::Test);
            (args, verdict)
        })
    };
    let pairs = [
        (CompilerConfig::safara_only(), CompilerConfig::safara_saturated()),
        (
            CompilerConfig::safara_clauses(),
            CompilerConfig::builder().safara(true).small(true).dim(true).saturate(true).build(),
        ),
    ];
    for (greedy, saturated) in &pairs {
        for w in spec_suite() {
            let (args_g, chk_g) = observe(w.as_ref(), greedy, Engine::Reference);
            assert!(chk_g.is_ok(), "{}: greedy checker: {chk_g:?}", w.name());
            for engine in [Engine::Reference, Engine::Decoded, Engine::Superblock] {
                let (args_s, chk_s) = observe(w.as_ref(), saturated, engine);
                assert_eq!(chk_g, chk_s, "{}: checker verdict under {engine:?}", w.name());
                assert_eq!(
                    args_g,
                    args_s,
                    "{}: saturated output diverges bitwise under {engine:?}",
                    w.name()
                );
            }
        }
    }
}

/// With the hot threshold at infinity the superblock engine must take
/// the decoded code path wholesale — identical reports and buffers, and
/// zero profiling overhead observable in behavior.
#[test]
fn threshold_inf_is_behaviorally_decoded() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(u64::MAX);
    for w in spec_suite().into_iter().take(3) {
        let (rep_dec, args_dec, chk_dec) = observe(w.as_ref(), Engine::Decoded);
        let (rep_sb, args_sb, chk_sb) = observe(w.as_ref(), Engine::Superblock);
        assert_eq!(chk_dec, chk_sb, "{}: checker verdict", w.name());
        assert_eq!(rep_dec, rep_sb, "{}: RunReport", w.name());
        assert_eq!(args_dec, args_sb, "{}: output buffers", w.name());
    }
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
}

/// Injected faults must surface the same typed error no matter which
/// engine is selected: a 10-seed sweep with a probabilistic `sim` fault
/// (plus a deterministic one) must produce per-seed outcomes —
/// code/phase/retryable/message or success — identical across engines.
#[test]
fn chaos_sweep_errors_identical_across_engines() {
    let _g = THRESHOLD_LOCK.lock().unwrap();
    set_superblock_threshold(DEFAULT_SUPERBLOCK_THRESHOLD);
    let w = &spec_suite()[0];
    let config = CompilerConfig::safara_clauses();
    let dev = DeviceConfig::k20xm();
    let outcome = |engine: Engine, seed: u64, spec: &str| -> Result<(), (String, String, bool)> {
        gpusim::with_engine(engine, || {
            let plan = FaultPlan::seeded(seed).with_spec(FaultSpec::parse(spec).unwrap());
            let mut args = w.args(Scale::Test);
            compile_and_run_with_faults(
                &w.source(),
                w.entry(),
                &config,
                &mut args,
                &dev,
                None,
                &plan,
            )
            .map(|_| ())
            .map_err(|e| (e.code().to_string(), e.to_string(), e.retryable()))
        })
    };
    for seed in 1..=10u64 {
        for spec in ["sim:fail:0.5", "sim:fail:1"] {
            let r = outcome(Engine::Reference, seed, spec);
            let d = outcome(Engine::Decoded, seed, spec);
            let s = outcome(Engine::Superblock, seed, spec);
            assert_eq!(r, d, "seed {seed} spec {spec}: reference vs decoded");
            assert_eq!(d, s, "seed {seed} spec {spec}: decoded vs superblock");
        }
    }
    // The deterministic spec must actually fail, and with the typed
    // simulator code, on every engine.
    for e in [Engine::Reference, Engine::Decoded, Engine::Superblock] {
        let r = outcome(e, 1, "sim:fail:1");
        let (code, _, retryable) = r.expect_err("sim:fail:1 must fail");
        assert_eq!(code, "sim");
        assert!(retryable);
    }
}
