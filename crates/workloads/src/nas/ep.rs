//! NAS EP — embarrassingly parallel (shares its kernel with
//! [`crate::spec::ep`]; the SPEC ACCEL benchmark is the NAS code).

use crate::spec::ep::{ep_reference, ep_source};
use crate::util::check_scalar;
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The NAS EP workload.
pub struct NasEp;

/// (threads, samples-per-thread) per scale — larger than the SPEC
/// variant to mimic the class-C emphasis on raw compute.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (256, 8),
        Scale::Bench => (16384, 24),
    }
}

impl Workload for NasEp {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn suite(&self) -> Suite {
        Suite::NasAcc
    }

    fn entry(&self) -> &'static str {
        "ep"
    }

    fn source(&self) -> String {
        ep_source()
    }

    fn args(&self, scale: Scale) -> Args {
        let (nt, m) = size(scale);
        Args::new().i32("nt", nt as i32).i32("m", m as i32).f32("sx", 0.0).f32("sy", 0.0)
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let (nt, m) = size(scale);
        let (wx, wy) = ep_reference(nt, m);
        check_scalar(args.scalar("sx").ok_or("missing sx")?.as_f64(), wx, 1e-3)?;
        check_scalar(args.scalar("sy").ok_or("missing sy")?.as_f64(), wy, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn nas_ep_correct() {
        run_workload(&NasEp, &CompilerConfig::safara_small(), Scale::Test, &DeviceConfig::k20xm())
            .unwrap();
    }
}
