//! NAS MG — multigrid V-cycle fragments: a 7-point smoother on the fine
//! grid plus full-weighting restriction to the coarse grid (C-modeled).
//!
//! The smoother's sequential `k` loop carries distance-2 reuse on the
//! fine field; the restriction kernel reads eight fine points per coarse
//! point (intra reuse after common-subexpression grouping).

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The NAS MG workload.
pub struct NasMg;

/// Fine-grid edge per scale (must be even).
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 40,
    }
}

impl Workload for NasMg {
    fn name(&self) -> &'static str {
        "MG"
    }

    fn suite(&self) -> Suite {
        Suite::NasAcc
    }

    fn entry(&self) -> &'static str {
        "mg_cycle"
    }

    fn source(&self) -> String {
        r#"
void mg_cycle(int n, int nc, const float v[n][n][n], float u[n][n][n],
              float r[nc][nc][nc]) {
  #pragma acc kernels copyin(v) copy(u) copyout(r) small(v, u, r)
  {
    #pragma acc loop gang
    for (int j = 1; j < n - 1; j++) {
      #pragma acc loop vector
      for (int i = 1; i < n - 1; i++) {
        #pragma acc loop seq
        for (int k = 1; k < n - 1; k++) {
          u[k][j][i] = 0.5 * v[k][j][i]
                     + 0.0833 * (v[k][j][i - 1] + v[k][j][i + 1]
                               + v[k][j - 1][i] + v[k][j + 1][i]
                               + v[k - 1][j][i] + v[k + 1][j][i]);
        }
      }
    }
    #pragma acc loop gang
    for (int j = 0; j < nc; j++) {
      #pragma acc loop vector
      for (int i = 0; i < nc; i++) {
        #pragma acc loop seq
        for (int k = 0; k < nc; k++) {
          r[k][j][i] = 0.125 * (u[2 * k][2 * j][2 * i] + u[2 * k][2 * j][2 * i + 1]
                              + u[2 * k][2 * j + 1][2 * i] + u[2 * k][2 * j + 1][2 * i + 1]
                              + u[2 * k + 1][2 * j][2 * i] + u[2 * k + 1][2 * j][2 * i + 1]
                              + u[2 * k + 1][2 * j + 1][2 * i]
                              + u[2 * k + 1][2 * j + 1][2 * i + 1]);
        }
      }
    }
  }
}
"#
        .to_string()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let nc = n / 2;
        Args::new()
            .i32("n", n as i32)
            .i32("nc", nc as i32)
            .array_f32("v", &rand_f32(600, n * n * n, -1.0, 1.0))
            .array_f32("u", &vec![0.0; n * n * n])
            .array_f32("r", &vec![0.0; nc * nc * nc])
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let v = rand_f32(600, n * n * n, -1.0, 1.0);
        let (u, r) = reference(n, &v);
        check_close_f32(&args.array("u").ok_or("missing u")?.as_f32(), &u, 1e-4)?;
        check_close_f32(&args.array("r").ok_or("missing r")?.as_f32(), &r, 1e-4)
    }
}

/// Reference smoother + restriction.
pub fn reference(n: usize, v: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let idx = |k: usize, j: usize, i: usize| (k * n + j) * n + i;
    let mut u = vec![0.0f32; n * n * n];
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            for k in 1..n - 1 {
                u[idx(k, j, i)] = 0.5 * v[idx(k, j, i)]
                    + 0.0833
                        * (v[idx(k, j, i - 1)]
                            + v[idx(k, j, i + 1)]
                            + v[idx(k, j - 1, i)]
                            + v[idx(k, j + 1, i)]
                            + v[idx(k - 1, j, i)]
                            + v[idx(k + 1, j, i)]);
            }
        }
    }
    let nc = n / 2;
    let ic = |k: usize, j: usize, i: usize| (k * nc + j) * nc + i;
    let mut r = vec![0.0f32; nc * nc * nc];
    for j in 0..nc {
        for i in 0..nc {
            for k in 0..nc {
                r[ic(k, j, i)] = 0.125
                    * (u[idx(2 * k, 2 * j, 2 * i)]
                        + u[idx(2 * k, 2 * j, 2 * i + 1)]
                        + u[idx(2 * k, 2 * j + 1, 2 * i)]
                        + u[idx(2 * k, 2 * j + 1, 2 * i + 1)]
                        + u[idx(2 * k + 1, 2 * j, 2 * i)]
                        + u[idx(2 * k + 1, 2 * j, 2 * i + 1)]
                        + u[idx(2 * k + 1, 2 * j + 1, 2 * i)]
                        + u[idx(2 * k + 1, 2 * j + 1, 2 * i + 1)]);
            }
        }
    }
    (u, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn mg_correct_under_profiles() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_small()] {
            run_workload(&NasMg, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn restriction_is_statically_uncoalesced() {
        // 2*i in the last subscript: the static analysis must classify the
        // fine-grid reads of the restriction kernel as uncoalesced. (At
        // tiny test sizes the handful of active lanes still fits one
        // 128-byte segment, so the static classification is the robust
        // check; the bench harness exercises the dynamic effect at scale.)
        use safara_core::analysis::coalesce::{classify_ref, CoalesceClass};
        use safara_core::analysis::region::RegionInfo;
        use safara_core::ir::{parse_program, Expr};
        let p = parse_program(&NasMg.source()).unwrap();
        let f = &p.functions[0];
        let region = f.regions()[0];
        // The restriction nest is the second top-level loop of the region.
        let restrict = safara_core::ir::OffloadRegion {
            directive: region.directive.clone(),
            body: vec![region.body[1].clone()],
            span: region.span,
        };
        let info = RegionInfo::analyze(&restrict);
        let refs = safara_core::ir::visit::collect_array_refs(&restrict.body);
        let strided: Vec<_> = refs
            .iter()
            .filter(|(r, w)| {
                !w && r.array.as_str() == "u"
                    && matches!(r.indices.last(), Some(Expr::Binary(..)))
            })
            .collect();
        assert!(!strided.is_empty());
        for (r, _) in strided {
            assert_eq!(classify_ref(r, &info), CoalesceClass::Uncoalesced, "{r:?}");
        }
    }
}
