//! NAS LU — SSOR-style lower/upper sweeps (C-modeled).
//!
//! A forward and a backward substitution along the sequential `k`
//! direction, with read-only coefficient reuse across iterations. The
//! backward sweep runs `k` downward (step −1), exercising the compiler's
//! downward-loop path (where inter-iteration rotation is deliberately
//! not applied).

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The NAS LU workload.
pub struct NasLu;

/// Edge length per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 32,
    }
}

impl Workload for NasLu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn suite(&self) -> Suite {
        Suite::NasAcc
    }

    fn entry(&self) -> &'static str {
        "lu_ssor"
    }

    fn source(&self) -> String {
        r#"
void lu_ssor(int nx, int ny, int nz, const float a[nz][ny][nx],
             const float b[nz][ny][nx], float x[nz][ny][nx]) {
  #pragma acc kernels copyin(a, b) copy(x) small(a, b, x)
  {
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {
        #pragma acc loop seq
        for (int k = 1; k < nz; k++) {
          x[k][j][i] = x[k][j][i]
                     - 0.45 * (a[k][j][i] + a[k - 1][j][i]) * x[k - 1][j][i];
        }
      }
    }
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {
        #pragma acc loop seq
        for (int k = nz - 2; k >= 0; k--) {
          x[k][j][i] = x[k][j][i]
                     - 0.45 * (b[k][j][i] + b[k + 1][j][i]) * x[k + 1][j][i];
        }
      }
    }
  }
}
"#
        .to_string()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let t = n * n * n;
        Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .i32("nz", n as i32)
            .array_f32("a", &rand_f32(620, t, 0.0, 0.5))
            .array_f32("b", &rand_f32(621, t, 0.0, 0.5))
            .array_f32("x", &rand_f32(622, t, -1.0, 1.0))
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let t = n * n * n;
        let a = rand_f32(620, t, 0.0, 0.5);
        let b = rand_f32(621, t, 0.0, 0.5);
        let mut x = rand_f32(622, t, -1.0, 1.0);
        reference(n, &a, &b, &mut x);
        check_close_f32(&args.array("x").ok_or("missing x")?.as_f32(), &x, 1e-3)
    }
}

/// Reference forward + backward substitution.
pub fn reference(n: usize, a: &[f32], b: &[f32], x: &mut [f32]) {
    let idx = |k: usize, j: usize, i: usize| (k * n + j) * n + i;
    for j in 0..n {
        for i in 0..n {
            for k in 1..n {
                x[idx(k, j, i)] -=
                    0.45 * (a[idx(k, j, i)] + a[idx(k - 1, j, i)]) * x[idx(k - 1, j, i)];
            }
        }
    }
    for j in 0..n {
        for i in 0..n {
            for k in (0..n - 1).rev() {
                x[idx(k, j, i)] -=
                    0.45 * (b[idx(k, j, i)] + b[idx(k + 1, j, i)]) * x[idx(k + 1, j, i)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn lu_correct_under_profiles() {
        let dev = DeviceConfig::k20xm();
        for cfg in [
            CompilerConfig::base(),
            CompilerConfig::safara_only(),
            CompilerConfig::safara_small(),
        ] {
            run_workload(&NasLu, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn downward_loop_still_correct_after_safara() {
        // The backward sweep's step −1 loop must not be rotated (the
        // transformation only supports step +1); correctness of the
        // combined result proves it was skipped or handled safely.
        run_workload(&NasLu, &CompilerConfig::safara_small(), Scale::Test, &DeviceConfig::k20xm())
            .unwrap();
    }
}
