//! NAS-OpenACC-like mini-applications (§V-B/§V-C of the paper).
//!
//! The six benchmarks the paper evaluates: EP, CG, MG, SP, LU, BT. All
//! are C-modeled (the paper: "the six benchmarks are written in C
//! language and do not use VLAs; so a `dim` clause is not useful"), so
//! only the `small` clause and SAFARA apply.

pub mod bt;
pub mod cg;
pub mod ep;
pub mod lu;
pub mod mg;
pub mod sp;
