//! NAS CG — conjugate gradient (shares its kernel with
//! [`crate::spec::cg`]; 354.cg is the NAS code in the SPEC suite).

use crate::spec::cg::{cg_inputs, cg_reference, cg_source};
use crate::util::{check_close_f32, check_scalar};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The NAS CG workload.
pub struct NasCg;

/// (rows, nnz-per-row) per scale.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (256, 8),
        Scale::Bench => (8192, 16),
    }
}

impl Workload for NasCg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn suite(&self) -> Suite {
        Suite::NasAcc
    }

    fn entry(&self) -> &'static str {
        "cg"
    }

    fn source(&self) -> String {
        cg_source()
    }

    fn args(&self, scale: Scale) -> Args {
        let (n, m) = size(scale);
        let (val, col, p) = cg_inputs(n, m);
        Args::new()
            .i32("n", n as i32)
            .i32("m", m as i32)
            .array_f32("val", &val)
            .array_i32("col", &col)
            .array_f32("p", &p)
            .array_f32("q", &vec![0.0; n])
            .f32("dot", 0.0)
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let (n, m) = size(scale);
        let (wq, wdot) = cg_reference(n, m);
        check_close_f32(&args.array("q").ok_or("missing q")?.as_f32(), &wq, 1e-4)?;
        check_scalar(args.scalar("dot").ok_or("missing dot")?.as_f64(), wdot, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn nas_cg_correct() {
        run_workload(&NasCg, &CompilerConfig::safara_small(), Scale::Test, &DeviceConfig::k20xm())
            .unwrap();
    }
}
