//! NAS BT — block-tridiagonal sweeps (shares its kernel with
//! [`crate::spec::bt`]; 370.bt is the NAS code in the SPEC suite).
//!
//! The paper singles BT out as the NAS benchmark that benefited from the
//! `small` clause (§V-C).

use crate::spec::bt::{bt_reference, bt_source};
use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The NAS BT workload.
pub struct NasBt;

/// Edge length per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 32,
    }
}

impl Workload for NasBt {
    fn name(&self) -> &'static str {
        "BT"
    }

    fn suite(&self) -> Suite {
        Suite::NasAcc
    }

    fn entry(&self) -> &'static str {
        "bt_sweep"
    }

    fn source(&self) -> String {
        bt_source()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let t = n * n * n;
        Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .i32("nz", n as i32)
            .array_f32("lhs", &rand_f32(630, t, 0.0, 0.5))
            .array_f32("diag", &rand_f32(631, t, 0.5, 2.0))
            .array_f32("rhs", &rand_f32(632, t, -1.0, 1.0))
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let t = n * n * n;
        let lhs = rand_f32(630, t, 0.0, 0.5);
        let diag = rand_f32(631, t, 0.5, 2.0);
        let mut rhs = rand_f32(632, t, -1.0, 1.0);
        bt_reference(n, &lhs, &diag, &mut rhs);
        check_close_f32(&args.array("rhs").ok_or("missing rhs")?.as_f32(), &rhs, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn nas_bt_correct() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_small()] {
            run_workload(&NasBt, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn small_reduces_bt_registers() {
        let dev = DeviceConfig::k20xm();
        let (_, base) = run_workload(&NasBt, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (_, small) = run_workload(&NasBt, &CompilerConfig::small(), Scale::Test, &dev).unwrap();
        assert!(
            small.function("bt_sweep").unwrap().max_regs()
                <= base.function("bt_sweep").unwrap().max_regs()
        );
    }
}
