//! NAS SP — scalar-pentadiagonal line solves (C-modeled; the NAS
//! counterpart of [`crate::spec::sp`] without allocatable arrays).
//!
//! One compute_rhs-style coalesced kernel plus x- and z-direction sweeps.
//! The x sweep is uncoalesced (lanes stride by `nx`); the paper names SP,
//! LU and BT as the kernels with uncoalesced accesses SAFARA prioritizes.

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The NAS SP workload.
pub struct NasSp;

/// Edge length per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 32,
    }
}

impl Workload for NasSp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn suite(&self) -> Suite {
        Suite::NasAcc
    }

    fn entry(&self) -> &'static str {
        "sp_solve"
    }

    fn source(&self) -> String {
        r#"
void sp_solve(int nx, int ny, int nz, const float u[nz][ny][nx],
              float rhs[nz][ny][nx], float lhs[nz][ny][nx]) {
  #pragma acc kernels copyin(u) copy(rhs, lhs) small(u, rhs, lhs)
  {
    #pragma acc loop gang
    for (int j = 1; j < ny - 1; j++) {
      #pragma acc loop vector
      for (int i = 1; i < nx - 1; i++) {
        #pragma acc loop seq
        for (int k = 1; k < nz - 1; k++) {
          rhs[k][j][i] = u[k][j][i]
                       + 0.1 * (u[k][j][i - 1] + u[k][j][i + 1])
                       + 0.1 * (u[k - 1][j][i] + u[k + 1][j][i]);
        }
      }
    }
    #pragma acc loop gang
    for (int k = 0; k < nz; k++) {
      #pragma acc loop vector
      for (int j = 0; j < ny; j++) {
        #pragma acc loop seq
        for (int i = 1; i < nx; i++) {
          rhs[k][j][i] = rhs[k][j][i]
                       - 0.4 * (lhs[k][j][i] + lhs[k][j][i - 1]) * rhs[k][j][i - 1];
        }
      }
    }
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {
        #pragma acc loop seq
        for (int k = 1; k < nz; k++) {
          rhs[k][j][i] = rhs[k][j][i]
                       - 0.4 * (lhs[k][j][i] + lhs[k - 1][j][i]) * rhs[k - 1][j][i];
        }
      }
    }
  }
}
"#
        .to_string()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let t = n * n * n;
        Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .i32("nz", n as i32)
            .array_f32("u", &rand_f32(610, t, -1.0, 1.0))
            .array_f32("rhs", &rand_f32(611, t, -1.0, 1.0))
            .array_f32("lhs", &rand_f32(612, t, 0.0, 0.5))
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let t = n * n * n;
        let u = rand_f32(610, t, -1.0, 1.0);
        let mut rhs = rand_f32(611, t, -1.0, 1.0);
        let lhs = rand_f32(612, t, 0.0, 0.5);
        reference(n, &u, &mut rhs, &lhs);
        check_close_f32(&args.array("rhs").ok_or("missing rhs")?.as_f32(), &rhs, 1e-3)
    }
}

/// Reference: the three kernels in order.
pub fn reference(n: usize, u: &[f32], rhs: &mut [f32], lhs: &[f32]) {
    let idx = |k: usize, j: usize, i: usize| (k * n + j) * n + i;
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            for k in 1..n - 1 {
                rhs[idx(k, j, i)] = u[idx(k, j, i)]
                    + 0.1 * (u[idx(k, j, i - 1)] + u[idx(k, j, i + 1)])
                    + 0.1 * (u[idx(k - 1, j, i)] + u[idx(k + 1, j, i)]);
            }
        }
    }
    for k in 0..n {
        for j in 0..n {
            for i in 1..n {
                rhs[idx(k, j, i)] -= 0.4
                    * (lhs[idx(k, j, i)] + lhs[idx(k, j, i - 1)])
                    * rhs[idx(k, j, i - 1)];
            }
        }
    }
    for j in 0..n {
        for i in 0..n {
            for k in 1..n {
                rhs[idx(k, j, i)] -= 0.4
                    * (lhs[idx(k, j, i)] + lhs[idx(k - 1, j, i)])
                    * rhs[idx(k - 1, j, i)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn nas_sp_correct_under_profiles() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_small()] {
            run_workload(&NasSp, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }
}
