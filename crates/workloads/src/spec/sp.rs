//! `356.sp` — scalar-pentadiagonal solver (Fortran-modeled).
//!
//! Matches the paper's Table II setup: ten hot kernels over ten
//! allocatable arrays with **two different dimension shapes** (five
//! solution fields `u1…u5` of shape `nz×ny×nx` and three work fields
//! `r1…r3` of shape `(nz+1)×(ny+1)×(nx+1)`, all lower-bound 1). Most
//! kernels touch a single allocatable array (the table's `NA` rows for
//! `dim`); HOT2/4/5/7/8/9 touch several same-shape arrays where `dim`
//! applies. HOT7 is an x-direction line sweep whose lanes stride across
//! memory — the uncoalesced accesses the paper blames for sp's modest
//! end-to-end gains (§V-C: "the performance bottleneck is in exploiting
//! first the memory access latency").

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 356.sp-like workload.
pub struct SpecSp;

/// Interior edge length per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 28,
    }
}

const U: [&str; 5] = ["u1", "u2", "u3", "u4", "u5"];
const R: [&str; 3] = ["r1", "r2", "r3"];

impl Workload for SpecSp {
    fn name(&self) -> &'static str {
        "356.sp"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "sp_step"
    }

    fn uses_dim(&self) -> bool {
        true
    }

    fn source(&self) -> String {
        source()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let (na, nb) = (n * n * n, (n + 1) * (n + 1) * (n + 1));
        let mut args = Args::new().i32("nx", n as i32).i32("ny", n as i32).i32("nz", n as i32);
        for (s, name) in U.iter().enumerate() {
            args = args.array_f32(name, &rand_f32(400 + s as u64, na, 0.1, 1.0));
        }
        for (s, name) in R.iter().enumerate() {
            args = args.array_f32(name, &rand_f32(500 + s as u64, nb, 0.1, 1.0));
        }
        args
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let (na, nb) = (n * n * n, (n + 1) * (n + 1) * (n + 1));
        let mut us: Vec<Vec<f32>> =
            (0..5).map(|s| rand_f32(400 + s as u64, na, 0.1, 1.0)).collect();
        let mut rs: Vec<Vec<f32>> =
            (0..3).map(|s| rand_f32(500 + s as u64, nb, 0.1, 1.0)).collect();
        reference_step(n, &mut us, &mut rs);
        for (s, name) in U.iter().enumerate() {
            let got = args.array(name).ok_or_else(|| format!("missing {name}"))?.as_f32();
            check_close_f32(&got, &us[s], 5e-4).map_err(|m| format!("{name}: {m}"))?;
        }
        for (s, name) in R.iter().enumerate() {
            let got = args.array(name).ok_or_else(|| format!("missing {name}"))?.as_f32();
            check_close_f32(&got, &rs[s], 5e-4).map_err(|m| format!("{name}: {m}"))?;
        }
        Ok(())
    }
}

/// The MiniACC source: one region, ten loop nests = HOT1…HOT10.
pub fn source() -> String {
    let mut params: Vec<String> =
        U.iter().map(|a| format!("float {a}[1:nz][1:ny][1:nx]")).collect();
    params.extend(R.iter().map(|a| format!("float {a}[1:nz+1][1:ny+1][1:nx+1]")));
    let all: Vec<&str> = U.iter().chain(R.iter()).copied().collect();
    format!(
        r#"
void sp_step(int nx, int ny, int nz, {params}) {{
  #pragma acc kernels copy({all}) \
      dim((1:nz, 1:ny, 1:nx)(u1, u2, u3, u4, u5), \
          (1:nz+1, 1:ny+1, 1:nx+1)(r1, r2, r3)) \
      small({all})
  {{
    // HOT1 (single array — dim NA): in-place k smoothing of u1.
    #pragma acc loop gang
    for (int j = 1; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          u1[k][j][i] = 0.8 * u1[k][j][i] + 0.2 * u1[k - 1][j][i];
        }}
      }}
    }}
    // HOT2 (u2, u3 share dims): k-difference coupling.
    #pragma acc loop gang
    for (int j = 1; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          u2[k][j][i] += 0.1 * (u3[k][j][i] - u3[k - 1][j][i]);
        }}
      }}
    }}
    // HOT3 (single array, other shape — dim NA).
    #pragma acc loop gang
    for (int j = 1; j <= ny + 1; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx + 1; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz + 1; k++) {{
          r1[k][j][i] = 0.5 * (r1[k][j][i] + r1[k - 1][j][i]);
        }}
      }}
    }}
    // HOT4 (u1, u2, u4 share dims).
    #pragma acc loop gang
    for (int j = 1; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 1; k <= nz; k++) {{
          u4[k][j][i] = u1[k][j][i] + 0.3 * u2[k][j][i];
        }}
      }}
    }}
    // HOT5 (five shared-dim arrays): the biggest dim win.
    #pragma acc loop gang
    for (int j = 1; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 1; k <= nz; k++) {{
          u5[k][j][i] = 0.25 * (u1[k][j][i] + u2[k][j][i] + u3[k][j][i] + u4[k][j][i]);
        }}
      }}
    }}
    // HOT6 (single array — dim NA): pure scaling.
    #pragma acc loop gang
    for (int j = 1; j <= ny + 1; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx + 1; i++) {{
        #pragma acc loop seq
        for (int k = 1; k <= nz + 1; k++) {{
          r2[k][j][i] *= 1.01;
        }}
      }}
    }}
    // HOT7 (x-direction line sweep — uncoalesced: lanes differ in j while
    // each thread walks i sequentially).
    #pragma acc loop gang
    for (int k = 1; k <= nz; k++) {{
      #pragma acc loop vector
      for (int j = 1; j <= ny; j++) {{
        #pragma acc loop seq
        for (int i = 2; i <= nx; i++) {{
          u5[k][j][i] = 0.6 * u5[k][j][i - 1]
                      + 0.2 * (u1[k][j][i] + u1[k][j][i - 1])
                      + 0.2 * u2[k][j][i];
        }}
      }}
    }}
    // HOT8 (all five u arrays differenced along k — the register-hungry
    // kernel, Table II's 211-register row).
    #pragma acc loop gang
    for (int j = 1; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          r3[k][j][i] = (u1[k][j][i] + u1[k - 1][j][i])
                      + (u2[k][j][i] + u2[k - 1][j][i])
                      + (u3[k][j][i] + u3[k - 1][j][i])
                      + (u4[k][j][i] + u4[k - 1][j][i])
                      + (u5[k][j][i] + u5[k - 1][j][i]);
        }}
      }}
    }}
    // HOT9 (u1, u2, u3): z-direction solve.
    #pragma acc loop gang
    for (int j = 1; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          u3[k][j][i] += 0.05 * (u1[k][j][i] - u1[k - 1][j][i])
                       + 0.05 * (u2[k][j][i] - u2[k - 1][j][i]);
        }}
      }}
    }}
    // HOT10 (single array — dim NA).
    #pragma acc loop gang
    for (int j = 1; j <= ny + 1; j++) {{
      #pragma acc loop vector
      for (int i = 1; i <= nx + 1; i++) {{
        #pragma acc loop seq
        for (int k = 1; k <= nz + 1; k++) {{
          r3[k][j][i] = r3[k][j][i] * 0.9 + 0.1;
        }}
      }}
    }}
  }}
}}
"#,
        params = params.join(", "),
        all = all.join(", "),
    )
}

/// Pure-Rust reference of the ten kernels, in launch order.
pub fn reference_step(n: usize, us: &mut [Vec<f32>], rs: &mut [Vec<f32>]) {
    let ia = |k: usize, j: usize, i: usize| ((k - 1) * n + (j - 1)) * n + (i - 1);
    let nb = n + 1;
    let ib = |k: usize, j: usize, i: usize| ((k - 1) * nb + (j - 1)) * nb + (i - 1);

    // HOT1
    for j in 1..=n {
        for i in 1..=n {
            for k in 2..=n {
                us[0][ia(k, j, i)] = 0.8 * us[0][ia(k, j, i)] + 0.2 * us[0][ia(k - 1, j, i)];
            }
        }
    }
    // HOT2
    for j in 1..=n {
        for i in 1..=n {
            for k in 2..=n {
                us[1][ia(k, j, i)] += 0.1 * (us[2][ia(k, j, i)] - us[2][ia(k - 1, j, i)]);
            }
        }
    }
    // HOT3
    for j in 1..=nb {
        for i in 1..=nb {
            for k in 2..=nb {
                rs[0][ib(k, j, i)] = 0.5 * (rs[0][ib(k, j, i)] + rs[0][ib(k - 1, j, i)]);
            }
        }
    }
    // HOT4
    for j in 1..=n {
        for i in 1..=n {
            for k in 1..=n {
                us[3][ia(k, j, i)] = us[0][ia(k, j, i)] + 0.3 * us[1][ia(k, j, i)];
            }
        }
    }
    // HOT5
    for j in 1..=n {
        for i in 1..=n {
            for k in 1..=n {
                us[4][ia(k, j, i)] = 0.25
                    * (us[0][ia(k, j, i)]
                        + us[1][ia(k, j, i)]
                        + us[2][ia(k, j, i)]
                        + us[3][ia(k, j, i)]);
            }
        }
    }
    // HOT6
    for v in rs[1].iter_mut() {
        *v *= 1.01;
    }
    // HOT7
    for k in 1..=n {
        for j in 1..=n {
            for i in 2..=n {
                us[4][ia(k, j, i)] = 0.6 * us[4][ia(k, j, i - 1)]
                    + 0.2 * (us[0][ia(k, j, i)] + us[0][ia(k, j, i - 1)])
                    + 0.2 * us[1][ia(k, j, i)];
            }
        }
    }
    // HOT8
    for j in 1..=n {
        for i in 1..=n {
            for k in 2..=n {
                rs[2][ib(k, j, i)] = (us[0][ia(k, j, i)] + us[0][ia(k - 1, j, i)])
                    + (us[1][ia(k, j, i)] + us[1][ia(k - 1, j, i)])
                    + (us[2][ia(k, j, i)] + us[2][ia(k - 1, j, i)])
                    + (us[3][ia(k, j, i)] + us[3][ia(k - 1, j, i)])
                    + (us[4][ia(k, j, i)] + us[4][ia(k - 1, j, i)]);
            }
        }
    }
    // HOT9
    for j in 1..=n {
        for i in 1..=n {
            for k in 2..=n {
                us[2][ia(k, j, i)] += 0.05 * (us[0][ia(k, j, i)] - us[0][ia(k - 1, j, i)])
                    + 0.05 * (us[1][ia(k, j, i)] - us[1][ia(k - 1, j, i)]);
            }
        }
    }
    // HOT10
    for v in rs[2].iter_mut() {
        *v = *v * 0.9 + 0.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn sp_correct_under_base_and_full_clauses() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_clauses()] {
            run_workload(&SpecSp, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn sp_has_ten_kernels() {
        let (_, program) =
            run_workload(&SpecSp, &CompilerConfig::base(), Scale::Test, &DeviceConfig::k20xm())
                .unwrap();
        assert_eq!(program.function("sp_step").unwrap().kernels.len(), 10);
    }

    #[test]
    fn hot7_is_uncoalesced() {
        let dev = DeviceConfig::k20xm();
        let (report, _) =
            run_workload(&SpecSp, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let s = &report.kernels[6].stats; // HOT7
        let req = s.global_ld_requests + s.global_st_requests + s.readonly_requests;
        let txn = s.global_transactions + s.readonly_transactions;
        // Lanes stride by nx floats; even at the tiny test size that means
        // more transactions than requests (at bench sizes the ratio grows
        // toward 32×).
        assert!(txn > req, "HOT7 should be uncoalesced: {txn} txn / {req} req");
    }

    #[test]
    fn hot8_uses_the_most_registers() {
        let dev = DeviceConfig::k20xm();
        let (_, program) =
            run_workload(&SpecSp, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let f = program.function("sp_step").unwrap();
        let regs: Vec<u32> = f.kernels.iter().map(|k| k.alloc.regs_used).collect();
        let hot8 = regs[7];
        assert_eq!(hot8, *regs.iter().max().unwrap(), "regs: {regs:?}");
    }
}
