//! `314.omriq` — MRI-Q reconstruction inner loop (C-modeled).
//!
//! Compute-bound: per-voxel sequential loop over k-space samples with
//! `sin`/`cos` per sample. The voxel coordinates `x[i]`, `y[i]`, `z[i]`
//! are invariant in the sample loop (hoisting reuse); the sample arrays
//! are broadcast reads. Memory optimization buys little here — the
//! paper's figures show 314 near 1.0×, a useful negative control.

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 314.omriq-like workload.
pub struct OMriq;

/// (voxels, samples) per scale.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (128, 24),
        Scale::Bench => (8192, 96),
    }
}

impl Workload for OMriq {
    fn name(&self) -> &'static str {
        "314.omriq"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "mriq"
    }

    fn source(&self) -> String {
        r#"
void mriq(int nvox, int nk, const float x[nvox], const float y[nvox],
          const float z[nvox], const float kx[nk], const float ky[nk],
          const float kz[nk], const float phir[nk], const float phii[nk],
          float qr[nvox], float qi[nvox]) {
  #pragma acc kernels copyin(x, y, z, kx, ky, kz, phir, phii) copyout(qr, qi) \
      small(x, y, z, kx, ky, kz, phir, phii, qr, qi)
  {
    #pragma acc loop gang vector
    for (int i = 0; i < nvox; i++) {
      float sr = 0.0;
      float si = 0.0;
      #pragma acc loop seq
      for (int k = 0; k < nk; k++) {
        float arg = 6.2831853 * (kx[k] * x[i] + ky[k] * y[i] + kz[k] * z[i]);
        float c = cos(arg);
        float s = sin(arg);
        sr += phir[k] * c - phii[k] * s;
        si += phir[k] * s + phii[k] * c;
      }
      qr[i] = sr;
      qi[i] = si;
    }
  }
}
"#
        .to_string()
    }

    fn args(&self, scale: Scale) -> Args {
        let (nv, nk) = size(scale);
        Args::new()
            .i32("nvox", nv as i32)
            .i32("nk", nk as i32)
            .array_f32("x", &rand_f32(1, nv, -1.0, 1.0))
            .array_f32("y", &rand_f32(2, nv, -1.0, 1.0))
            .array_f32("z", &rand_f32(3, nv, -1.0, 1.0))
            .array_f32("kx", &rand_f32(4, nk, -1.0, 1.0))
            .array_f32("ky", &rand_f32(5, nk, -1.0, 1.0))
            .array_f32("kz", &rand_f32(6, nk, -1.0, 1.0))
            .array_f32("phir", &rand_f32(7, nk, -1.0, 1.0))
            .array_f32("phii", &rand_f32(8, nk, -1.0, 1.0))
            .array_f32("qr", &vec![0.0; nv])
            .array_f32("qi", &vec![0.0; nv])
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let (nv, nk) = size(scale);
        let x = rand_f32(1, nv, -1.0, 1.0);
        let y = rand_f32(2, nv, -1.0, 1.0);
        let z = rand_f32(3, nv, -1.0, 1.0);
        let kx = rand_f32(4, nk, -1.0, 1.0);
        let ky = rand_f32(5, nk, -1.0, 1.0);
        let kz = rand_f32(6, nk, -1.0, 1.0);
        let phir = rand_f32(7, nk, -1.0, 1.0);
        let phii = rand_f32(8, nk, -1.0, 1.0);
        let (wr, wi) = reference(&x, &y, &z, &kx, &ky, &kz, &phir, &phii);
        check_close_f32(&args.array("qr").ok_or("missing qr")?.as_f32(), &wr, 5e-3)?;
        check_close_f32(&args.array("qi").ok_or("missing qi")?.as_f32(), &wi, 5e-3)
    }
}

/// Reference Q computation.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::approx_constant)] // matches the kernel's truncated 2π literal
pub fn reference(
    x: &[f32],
    y: &[f32],
    z: &[f32],
    kx: &[f32],
    ky: &[f32],
    kz: &[f32],
    phir: &[f32],
    phii: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let mut qr = vec![0.0f32; x.len()];
    let mut qi = vec![0.0f32; x.len()];
    for i in 0..x.len() {
        let (mut sr, mut si) = (0.0f32, 0.0f32);
        for k in 0..kx.len() {
            let arg = 6.283_185_3_f32 * (kx[k] * x[i] + ky[k] * y[i] + kz[k] * z[i]);
            let (s, c) = (arg.sin(), arg.cos());
            sr += phir[k] * c - phii[k] * s;
            si += phir[k] * s + phii[k] * c;
        }
        qr[i] = sr;
        qi[i] = si;
    }
    (qr, qi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn correct_and_compute_bound() {
        let dev = DeviceConfig::k20xm();
        let (report, _) =
            run_workload(&OMriq, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        assert!(report.kernels[0].stats.sfu_insts > 0);
    }

    #[test]
    fn safara_hoists_voxel_coordinates() {
        let dev = DeviceConfig::k20xm();
        let (base, _) = run_workload(&OMriq, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (saf, pg) =
            run_workload(&OMriq, &CompilerConfig::safara_only(), Scale::Test, &dev).unwrap();
        // x[i], y[i], z[i] are loop-invariant: SAFARA hoists them out of
        // the k loop, eliminating ~3·(nk-1) loads per voxel.
        let f = pg.function("mriq").unwrap();
        assert!(f.sr_outcome.temps_added >= 3, "{:?}", f.sr_outcome);
        assert!(
            saf.kernels[0].stats.readonly_requests < base.kernels[0].stats.readonly_requests
        );
    }
}
