//! `354.cg` — conjugate-gradient core: CSR sparse matrix–vector product
//! plus a dot product (C-modeled).
//!
//! The matrix values/columns are laid out row-major with a fixed
//! row length, so lanes (consecutive rows) stride across memory —
//! **uncoalesced** — and the `x[col[..]]` gather is statically
//! unanalyzable (`Unknown`, treated as uncoalesced by the cost model).

use crate::util::{check_close_f32, check_scalar, rand_f32, rand_i32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 354.cg-like workload.
pub struct SpecCg;

/// (rows, nnz-per-row) per scale.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (256, 8),
        Scale::Bench => (8192, 16),
    }
}

/// Shared MiniACC source for the SPEC and NAS CG variants.
pub fn cg_source() -> String {
    r#"
void cg(int n, int m, const float val[n][m], const int col[n][m],
        const float p[n], float q[n], float dot) {
  #pragma acc kernels copyin(val, col, p) copyout(q) small(val, col, p, q)
  {
    #pragma acc loop gang vector
    for (int i = 0; i < n; i++) {
      float sum = 0.0;
      #pragma acc loop seq
      for (int k = 0; k < m; k++) {
        sum += val[i][k] * p[col[i][k]];
      }
      q[i] = sum;
    }
    #pragma acc loop gang vector reduction(+:dot)
    for (int i = 0; i < n; i++) {
      dot += p[i] * q[i];
    }
  }
}
"#
    .to_string()
}

/// Deterministic CSR-like inputs: values in (0,1), columns in [0, n).
pub fn cg_inputs(n: usize, m: usize) -> (Vec<f32>, Vec<i32>, Vec<f32>) {
    let val = rand_f32(354, n * m, 0.01, 1.0);
    let col = rand_i32(355, n * m, 0, n as i32);
    let p = rand_f32(356, n, 0.01, 1.0);
    (val, col, p)
}

/// Reference SpMV + dot.
pub fn cg_reference(n: usize, m: usize) -> (Vec<f32>, f64) {
    let (val, col, p) = cg_inputs(n, m);
    let mut q = vec![0.0f32; n];
    for i in 0..n {
        let mut sum = 0.0f32;
        for k in 0..m {
            sum += val[i * m + k] * p[col[i * m + k] as usize];
        }
        q[i] = sum;
    }
    let dot: f64 = (0..n).map(|i| (p[i] * q[i]) as f64).sum();
    (q, dot)
}

impl Workload for SpecCg {
    fn name(&self) -> &'static str {
        "354.cg"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "cg"
    }

    fn source(&self) -> String {
        cg_source()
    }

    fn args(&self, scale: Scale) -> Args {
        let (n, m) = size(scale);
        let (val, col, p) = cg_inputs(n, m);
        Args::new()
            .i32("n", n as i32)
            .i32("m", m as i32)
            .array_f32("val", &val)
            .array_i32("col", &col)
            .array_f32("p", &p)
            .array_f32("q", &vec![0.0; n])
            .f32("dot", 0.0)
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let (n, m) = size(scale);
        let (wq, wdot) = cg_reference(n, m);
        check_close_f32(&args.array("q").ok_or("missing q")?.as_f32(), &wq, 1e-4)?;
        check_scalar(args.scalar("dot").ok_or("missing dot")?.as_f64(), wdot, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn spmv_and_dot_match_reference() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_only()] {
            run_workload(&SpecCg, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn gather_is_uncoalesced() {
        // The row-major fixed-width layout makes warp lanes stride:
        // transactions far exceed requests.
        let dev = DeviceConfig::k20xm();
        let (report, _) = run_workload(&SpecCg, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let s = &report.kernels[0].stats;
        let txn = s.global_transactions + s.readonly_transactions;
        let req = s.global_ld_requests + s.global_st_requests + s.readonly_requests;
        assert!(txn > 4 * req, "expected heavy uncoalescing: {txn} txns / {req} reqs");
    }

    #[test]
    fn second_kernel_sees_first_kernels_q() {
        // Cross-kernel dataflow through device memory (q written by the
        // SpMV kernel feeds the dot kernel).
        let dev = DeviceConfig::k20xm();
        run_workload(&SpecCg, &CompilerConfig::safara_clauses(), Scale::Test, &dev).unwrap();
    }
}
