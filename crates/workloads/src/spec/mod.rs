//! SPEC-ACCEL-like mini-applications (§V-B of the paper).

pub mod bt;
pub mod cg;
pub mod csp;
pub mod ep;
pub mod olbm;
pub mod omriq;
pub mod ostencil;
pub mod seismic;
pub mod sp;
pub mod swim;
