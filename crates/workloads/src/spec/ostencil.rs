//! `303.ostencil` — 3-D 7-point Jacobi heat stencil (C-modeled).
//!
//! The z (`k`) loop is sequential inside each thread, so `in[k-1]`,
//! `in[k]`, `in[k+1]` form an inter-iteration reuse chain (distance 2)
//! that SAFARA serves with rotating temporaries. C benchmark: `small`
//! applies, `dim` does not (§V-C).

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 303.ostencil-like workload.
pub struct OStencil;

/// Grid edge per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 10,
        Scale::Bench => 40,
    }
}

impl Workload for OStencil {
    fn name(&self) -> &'static str {
        "303.ostencil"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "ostencil"
    }

    fn source(&self) -> String {
        r#"
void ostencil(int nx, int ny, int nz, float c0, float c1,
              const float in[nz][ny][nx], float out[nz][ny][nx]) {
  #pragma acc kernels copyin(in) copyout(out) small(in, out)
  {
    #pragma acc loop gang
    for (int j = 1; j < ny - 1; j++) {
      #pragma acc loop vector
      for (int i = 1; i < nx - 1; i++) {
        #pragma acc loop seq
        for (int k = 1; k < nz - 1; k++) {
          out[k][j][i] = c0 * in[k][j][i]
                       + c1 * (in[k][j][i - 1] + in[k][j][i + 1]
                             + in[k][j - 1][i] + in[k][j + 1][i]
                             + in[k - 1][j][i] + in[k + 1][j][i]);
        }
      }
    }
  }
}
"#
        .to_string()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .i32("nz", n as i32)
            .f32("c0", 0.5)
            .f32("c1", 0.08)
            .array_f32("in", &rand_f32(303, n * n * n, 0.0, 1.0))
            .array_f32("out", &vec![0.0; n * n * n])
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let input = rand_f32(303, n * n * n, 0.0, 1.0);
        let want = reference(n, 0.5, 0.08, &input);
        let got = args.array("out").ok_or("missing out")?.as_f32();
        check_close_f32(&got, &want, 1e-4)
    }
}

/// Reference 7-point stencil.
pub fn reference(n: usize, c0: f32, c1: f32, input: &[f32]) -> Vec<f32> {
    let idx = |k: usize, j: usize, i: usize| (k * n + j) * n + i;
    let mut out = vec![0.0f32; n * n * n];
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            for k in 1..n - 1 {
                out[idx(k, j, i)] = c0 * input[idx(k, j, i)]
                    + c1 * (input[idx(k, j, i - 1)]
                        + input[idx(k, j, i + 1)]
                        + input[idx(k, j - 1, i)]
                        + input[idx(k, j + 1, i)]
                        + input[idx(k - 1, j, i)]
                        + input[idx(k + 1, j, i)]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn correct_under_base_and_safara() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_only()] {
            run_workload(&OStencil, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn safara_eliminates_k_direction_loads() {
        // The rotating-temporary chain must reduce read-only transactions.
        let dev = DeviceConfig::k20xm();
        let (base, _) =
            run_workload(&OStencil, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (saf, _) =
            run_workload(&OStencil, &CompilerConfig::safara_only(), Scale::Test, &dev).unwrap();
        let loads = |r: &safara_core::RunReport| {
            r.kernels[0].stats.readonly_requests + r.kernels[0].stats.global_ld_requests
        };
        assert!(
            loads(&saf) < loads(&base),
            "SAFARA should remove loads: {} vs {}",
            loads(&saf),
            loads(&base)
        );
    }
}
