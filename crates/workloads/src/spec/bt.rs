//! `370.bt` — block-tridiagonal solver (C-modeled).
//!
//! Forward/backward line sweeps along `i` with lanes parallel in `j`:
//! heavily uncoalesced with strong inter-iteration reuse — the profile
//! where SAFARA's latency-aware candidate ranking pays off most (the
//! figures' ~2× bars for bt/lu).

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 370.bt-like workload.
pub struct SpecBt;

/// Edge length per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 32,
    }
}

/// Shared MiniACC source for the SPEC and NAS BT variants.
pub fn bt_source() -> String {
    r#"
void bt_sweep(int nx, int ny, int nz, const float lhs[nz][ny][nx],
              const float diag[nz][ny][nx], float rhs[nz][ny][nx]) {
  #pragma acc kernels copyin(lhs, diag) copy(rhs) small(lhs, diag, rhs)
  {
    #pragma acc loop gang
    for (int k = 0; k < nz; k++) {
      #pragma acc loop vector
      for (int j = 0; j < ny; j++) {
        #pragma acc loop seq
        for (int i = 1; i < nx; i++) {
          rhs[k][j][i] = (rhs[k][j][i]
                          - 0.5 * (lhs[k][j][i] + lhs[k][j][i - 1]) * rhs[k][j][i - 1])
                       / max(0.5 * (diag[k][j][i] + diag[k][j][i - 1]), 0.1);
        }
      }
    }
    #pragma acc loop gang
    for (int k = 0; k < nz; k++) {
      #pragma acc loop vector
      for (int j = 0; j < ny; j++) {
        #pragma acc loop seq
        for (int i = nx - 2; i >= 0; i--) {
          rhs[k][j][i] = rhs[k][j][i] - lhs[k][j][i + 1] * rhs[k][j][i + 1];
        }
      }
    }
  }
}
"#
    .to_string()
}

/// Reference forward + backward sweep.
pub fn bt_reference(n: usize, lhs: &[f32], diag: &[f32], rhs: &mut [f32]) {
    let idx = |k: usize, j: usize, i: usize| (k * n + j) * n + i;
    for k in 0..n {
        for j in 0..n {
            for i in 1..n {
                rhs[idx(k, j, i)] = (rhs[idx(k, j, i)]
                    - 0.5 * (lhs[idx(k, j, i)] + lhs[idx(k, j, i - 1)]) * rhs[idx(k, j, i - 1)])
                    / (0.5 * (diag[idx(k, j, i)] + diag[idx(k, j, i - 1)])).max(0.1);
            }
        }
    }
    for k in 0..n {
        for j in 0..n {
            for i in (0..n - 1).rev() {
                rhs[idx(k, j, i)] -= lhs[idx(k, j, i + 1)] * rhs[idx(k, j, i + 1)];
            }
        }
    }
}

impl Workload for SpecBt {
    fn name(&self) -> &'static str {
        "370.bt"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "bt_sweep"
    }

    fn source(&self) -> String {
        bt_source()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let t = n * n * n;
        Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .i32("nz", n as i32)
            .array_f32("lhs", &rand_f32(370, t, 0.0, 0.5))
            .array_f32("diag", &rand_f32(371, t, 0.5, 2.0))
            .array_f32("rhs", &rand_f32(372, t, -1.0, 1.0))
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let t = n * n * n;
        let lhs = rand_f32(370, t, 0.0, 0.5);
        let diag = rand_f32(371, t, 0.5, 2.0);
        let mut rhs = rand_f32(372, t, -1.0, 1.0);
        bt_reference(n, &lhs, &diag, &mut rhs);
        check_close_f32(&args.array("rhs").ok_or("missing rhs")?.as_f32(), &rhs, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn bt_correct_under_profiles() {
        let dev = DeviceConfig::k20xm();
        for cfg in [
            CompilerConfig::base(),
            CompilerConfig::safara_only(),
            CompilerConfig::safara_small(),
        ] {
            run_workload(&SpecBt, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn safara_speeds_up_bt() {
        // The headline effect: uncoalesced line sweeps + reuse → SAFARA
        // should clearly reduce modelled time.
        let dev = DeviceConfig::k20xm();
        let (base, _) = run_workload(&SpecBt, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (saf, _) =
            run_workload(&SpecBt, &CompilerConfig::safara_small(), Scale::Test, &dev).unwrap();
        assert!(
            saf.total_cycles() < base.total_cycles(),
            "SAFARA {} vs base {}",
            saf.total_cycles(),
            base.total_cycles()
        );
    }
}
