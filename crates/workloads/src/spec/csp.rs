//! `357.csp` — the C port of the scalar-pentadiagonal solver.
//!
//! Same algorithmic skeleton as [`super::sp`] but C-modeled: zero-based
//! arrays, pointer-style sizing, **no `dim` clause** (the paper: the C
//! benchmarks' pointer operations preclude it). Three representative
//! kernels: a k-smooth, an uncoalesced x-line sweep, and a combine.

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 357.csp-like workload.
pub struct Csp;

/// Edge length per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 32,
    }
}

impl Workload for Csp {
    fn name(&self) -> &'static str {
        "357.csp"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "csp_step"
    }

    fn source(&self) -> String {
        r#"
void csp_step(int nx, int ny, int nz, float u[nz][ny][nx], float v[nz][ny][nx],
              float w[nz][ny][nx]) {
  #pragma acc kernels copy(u, v, w) small(u, v, w)
  {
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {
        #pragma acc loop seq
        for (int k = 1; k < nz; k++) {
          u[k][j][i] = 0.7 * u[k][j][i] + 0.3 * u[k - 1][j][i];
        }
      }
    }
    #pragma acc loop gang
    for (int k = 0; k < nz; k++) {
      #pragma acc loop vector
      for (int j = 0; j < ny; j++) {
        #pragma acc loop seq
        for (int i = 1; i < nx; i++) {
          v[k][j][i] = 0.5 * v[k][j][i - 1] + 0.25 * (u[k][j][i] + u[k][j][i - 1]);
        }
      }
    }
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {
        #pragma acc loop seq
        for (int k = 0; k < nz; k++) {
          w[k][j][i] = u[k][j][i] + v[k][j][i] + 0.5 * w[k][j][i];
        }
      }
    }
  }
}
"#
        .to_string()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let t = n * n * n;
        Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .i32("nz", n as i32)
            .array_f32("u", &rand_f32(357, t, 0.1, 1.0))
            .array_f32("v", &rand_f32(358, t, 0.1, 1.0))
            .array_f32("w", &rand_f32(359, t, 0.1, 1.0))
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let t = n * n * n;
        let mut u = rand_f32(357, t, 0.1, 1.0);
        let mut v = rand_f32(358, t, 0.1, 1.0);
        let mut w = rand_f32(359, t, 0.1, 1.0);
        reference(n, &mut u, &mut v, &mut w);
        check_close_f32(&args.array("u").ok_or("missing u")?.as_f32(), &u, 5e-4)?;
        check_close_f32(&args.array("v").ok_or("missing v")?.as_f32(), &v, 5e-4)?;
        check_close_f32(&args.array("w").ok_or("missing w")?.as_f32(), &w, 5e-4)
    }
}

/// Reference for the three kernels.
pub fn reference(n: usize, u: &mut [f32], v: &mut [f32], w: &mut [f32]) {
    let idx = |k: usize, j: usize, i: usize| (k * n + j) * n + i;
    for j in 0..n {
        for i in 0..n {
            for k in 1..n {
                u[idx(k, j, i)] = 0.7 * u[idx(k, j, i)] + 0.3 * u[idx(k - 1, j, i)];
            }
        }
    }
    for k in 0..n {
        for j in 0..n {
            for i in 1..n {
                v[idx(k, j, i)] =
                    0.5 * v[idx(k, j, i - 1)] + 0.25 * (u[idx(k, j, i)] + u[idx(k, j, i - 1)]);
            }
        }
    }
    for j in 0..n {
        for i in 0..n {
            for k in 0..n {
                w[idx(k, j, i)] = u[idx(k, j, i)] + v[idx(k, j, i)] + 0.5 * w[idx(k, j, i)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn csp_correct_under_profiles() {
        let dev = DeviceConfig::k20xm();
        for cfg in [
            CompilerConfig::base(),
            CompilerConfig::small(),
            CompilerConfig::safara_small(),
        ] {
            run_workload(&Csp, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }
}
