//! `363.swim` — shallow-water equations (Fortran-modeled, 2-D).
//!
//! Three same-dimension allocatable fields (`uf`, `vf`, `pf`) updated by
//! neighbor stencils: a `dim`-friendly Fortran app with coalesced
//! accesses and intra-iteration reuse (each field element feeds several
//! terms).

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 363.swim-like workload.
pub struct Swim;

/// Grid edge per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 16,
        Scale::Bench => 192,
    }
}

impl Workload for Swim {
    fn name(&self) -> &'static str {
        "363.swim"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "swim_step"
    }

    fn uses_dim(&self) -> bool {
        true
    }

    fn source(&self) -> String {
        r#"
void swim_step(int nx, int ny, float c,
               float uf[1:ny][1:nx], float vf[1:ny][1:nx], float pf[1:ny][1:nx],
               float un[1:ny][1:nx], float vn[1:ny][1:nx], float pn[1:ny][1:nx]) {
  #pragma acc kernels copyin(uf, vf, pf) copyout(un, vn, pn) \
      dim((1:ny, 1:nx)(uf, vf, pf, un, vn, pn)) \
      small(uf, vf, pf, un, vn, pn)
  {
    #pragma acc loop gang
    for (int j = 2; j < ny; j++) {
      #pragma acc loop vector
      for (int i = 2; i < nx; i++) {
        un[j][i] = uf[j][i] + c * (pf[j][i - 1] - pf[j][i + 1] + vf[j][i] * uf[j][i]);
        vn[j][i] = vf[j][i] + c * (pf[j - 1][i] - pf[j + 1][i] + uf[j][i] * vf[j][i]);
        pn[j][i] = pf[j][i]
                 + c * (uf[j][i - 1] - uf[j][i + 1] + vf[j - 1][i] - vf[j + 1][i]);
      }
    }
  }
}
"#
        .to_string()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let t = n * n;
        Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .f32("c", 0.1)
            .array_f32("uf", &rand_f32(363, t, -1.0, 1.0))
            .array_f32("vf", &rand_f32(364, t, -1.0, 1.0))
            .array_f32("pf", &rand_f32(365, t, -1.0, 1.0))
            .array_f32("un", &vec![0.0; t])
            .array_f32("vn", &vec![0.0; t])
            .array_f32("pn", &vec![0.0; t])
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let t = n * n;
        let uf = rand_f32(363, t, -1.0, 1.0);
        let vf = rand_f32(364, t, -1.0, 1.0);
        let pf = rand_f32(365, t, -1.0, 1.0);
        let (un, vn, pn) = reference(n, 0.1, &uf, &vf, &pf);
        check_close_f32(&args.array("un").ok_or("missing un")?.as_f32(), &un, 1e-4)?;
        check_close_f32(&args.array("vn").ok_or("missing vn")?.as_f32(), &vn, 1e-4)?;
        check_close_f32(&args.array("pn").ok_or("missing pn")?.as_f32(), &pn, 1e-4)
    }
}

/// Reference step.
pub fn reference(
    n: usize,
    c: f32,
    uf: &[f32],
    vf: &[f32],
    pf: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let idx = |j: usize, i: usize| (j - 1) * n + (i - 1);
    let mut un = vec![0.0f32; n * n];
    let mut vn = vec![0.0f32; n * n];
    let mut pn = vec![0.0f32; n * n];
    for j in 2..n {
        for i in 2..n {
            un[idx(j, i)] = uf[idx(j, i)]
                + c * (pf[idx(j, i - 1)] - pf[idx(j, i + 1)] + vf[idx(j, i)] * uf[idx(j, i)]);
            vn[idx(j, i)] = vf[idx(j, i)]
                + c * (pf[idx(j - 1, i)] - pf[idx(j + 1, i)] + uf[idx(j, i)] * vf[idx(j, i)]);
            pn[idx(j, i)] = pf[idx(j, i)]
                + c * (uf[idx(j, i - 1)] - uf[idx(j, i + 1)] + vf[idx(j - 1, i)]
                    - vf[idx(j + 1, i)]);
        }
    }
    (un, vn, pn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn swim_correct_under_profiles() {
        let dev = DeviceConfig::k20xm();
        for cfg in [
            CompilerConfig::base(),
            CompilerConfig::small_dim(),
            CompilerConfig::safara_clauses(),
        ] {
            run_workload(&Swim, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn dim_reduces_registers() {
        let dev = DeviceConfig::k20xm();
        let (_, base) = run_workload(&Swim, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (_, dim) = run_workload(&Swim, &CompilerConfig::small_dim(), Scale::Test, &dev).unwrap();
        assert!(
            dim.function("swim_step").unwrap().max_regs()
                < base.function("swim_step").unwrap().max_regs()
        );
    }
}
