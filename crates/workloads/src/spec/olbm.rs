//! `304.olbm` — D2Q9-style lattice Boltzmann collide step (C-modeled).
//!
//! Nine distribution-function arrays share dimensions, but as a C
//! benchmark the `dim` clause is not used (the paper notes 303/304/314
//! use pointer operations). Each distribution is read twice per site
//! (density and momentum sums), giving SAFARA intra-iteration reuse.

use crate::util::{check_close_f32, rand_f32};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 304.olbm-like workload.
pub struct OLbm;

/// Lattice edge per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 16,
        Scale::Bench => 160,
    }
}

const DIRS: [&str; 9] = ["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"];
/// Lattice weights for D2Q9.
const W: [f32; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

impl Workload for OLbm {
    fn name(&self) -> &'static str {
        "304.olbm"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "olbm_collide"
    }

    fn source(&self) -> String {
        let params: Vec<String> = DIRS.iter().map(|d| format!("float {d}[ny][nx]")).collect();
        let list = DIRS.join(", ");
        let rho_sum = DIRS
            .iter()
            .map(|d| format!("{d}[j][i]"))
            .collect::<Vec<_>>()
            .join(" + ");
        let relax: Vec<String> = DIRS
            .iter()
            .enumerate()
            .map(|(q, d)| {
                format!(
                    "          {d}[j][i] = (1.0 - omega) * {d}[j][i] + omega * {w} * rho;",
                    w = W[q]
                )
            })
            .collect();
        format!(
            r#"
void olbm_collide(int nx, int ny, float omega, {params}) {{
  #pragma acc kernels copy({list}) small({list})
  {{
    #pragma acc loop gang
    for (int j = 0; j < ny; j++) {{
      #pragma acc loop vector
      for (int i = 0; i < nx; i++) {{
        float rho = {rho_sum};
{relax}
      }}
    }}
  }}
}}
"#,
            params = params.join(", "),
            list = list,
            rho_sum = rho_sum,
            relax = relax.join("\n"),
        )
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let mut args = Args::new().i32("nx", n as i32).i32("ny", n as i32).f32("omega", 0.6);
        for (q, d) in DIRS.iter().enumerate() {
            args = args.array_f32(d, &rand_f32(304 + q as u64, n * n, 0.01, 1.0));
        }
        args
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let mut fs: Vec<Vec<f32>> = DIRS
            .iter()
            .enumerate()
            .map(|(q, _)| rand_f32(304 + q as u64, n * n, 0.01, 1.0))
            .collect();
        reference(n, 0.6, &mut fs);
        for (q, d) in DIRS.iter().enumerate() {
            let got = args.array(d).ok_or_else(|| format!("missing {d}"))?.as_f32();
            check_close_f32(&got, &fs[q], 1e-4).map_err(|m| format!("{d}: {m}"))?;
        }
        Ok(())
    }
}

/// Reference collide step.
pub fn reference(n: usize, omega: f32, fs: &mut [Vec<f32>]) {
    for j in 0..n {
        for i in 0..n {
            let site = j * n + i;
            let rho: f32 = fs.iter().map(|f| f[site]).sum();
            for (q, f) in fs.iter_mut().enumerate() {
                f[site] = (1.0 - omega) * f[site] + omega * W[q] * rho;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn correct_under_all_core_profiles() {
        let dev = DeviceConfig::k20xm();
        for cfg in [
            CompilerConfig::base(),
            CompilerConfig::safara_only(),
            CompilerConfig::safara_clauses(),
            CompilerConfig::pgi_like(),
        ] {
            run_workload(&OLbm, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn intra_reuse_found() {
        // Each f is read twice per site (rho sum + relax) — SAFARA must
        // collapse that to one load.
        let dev = DeviceConfig::k20xm();
        let (base, _) = run_workload(&OLbm, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (saf, _) =
            run_workload(&OLbm, &CompilerConfig::safara_only(), Scale::Test, &dev).unwrap();
        assert!(
            saf.kernels[0].stats.global_ld_requests < base.kernels[0].stats.global_ld_requests,
            "{} vs {}",
            saf.kernels[0].stats.global_ld_requests,
            base.kernels[0].stats.global_ld_requests
        );
    }
}
