//! `352.ep` — embarrassingly parallel Gaussian-pair generation
//! (C-modeled, compute-bound, reduction-heavy).
//!
//! Each thread derives pseudo-random uniforms from a hash of its sample
//! index (`fract(sin(n)·K)`), converts them Box–Muller style, and
//! accumulates magnitude sums via `+` reductions. Little memory traffic:
//! register optimizations barely move it (the figures' low bars for EP).

use crate::util::check_scalar;
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 352.ep-like workload.
pub struct SpecEp;

/// (threads, samples-per-thread) per scale.
pub fn size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (256, 8),
        Scale::Bench => (16384, 24),
    }
}

/// Shared MiniACC source for the SPEC and NAS EP variants.
pub fn ep_source() -> String {
    r#"
void ep(int nt, int m, float sx, float sy) {
  #pragma acc kernels
  {
    #pragma acc loop gang vector reduction(+:sx) reduction(+:sy)
    for (int i = 0; i < nt; i++) {
      #pragma acc loop seq
      for (int k = 0; k < m; k++) {
        float n1 = (float) (i * m + k);
        float u1 = sin(n1 * 12.9898) * 43758.547;
        u1 = u1 - floor(u1);
        float u2 = sin(n1 * 78.233) * 12543.123;
        u2 = u2 - floor(u2);
        u1 = max(u1, 0.000001);
        float r = sqrt(0.0 - 2.0 * log(u1));
        float c = cos(6.2831853 * u2);
        float s = sin(6.2831853 * u2);
        sx += fabs(r * c);
        sy += fabs(r * s);
      }
    }
  }
}
"#
    .to_string()
}

/// Reference computation shared by both EP variants.
///
/// Mirrors the device's mixed precision exactly: MiniACC float literals
/// are `double`, so products with them are evaluated in f64 and rounded
/// back to f32 on assignment — the hash is chaotic, so the reference must
/// follow the same rounding. Each thread accumulates in f32 (as the
/// generated kernel does) before the f32 atomic combine.
#[allow(clippy::approx_constant)] // matches the kernel's truncated 2π literal
pub fn ep_reference(nt: usize, m: usize) -> (f64, f64) {
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    for i in 0..nt {
        let (mut tx, mut ty) = (0.0f32, 0.0f32);
        for k in 0..m {
            let n1 = (i * m + k) as f32;
            let mut u1 = (((n1 as f64) * 12.9898).sin() * 43758.547) as f32;
            u1 -= u1.floor();
            let mut u2 = (((n1 as f64) * 78.233).sin() * 12543.123) as f32;
            u2 -= u2.floor();
            u1 = ((u1 as f64).max(0.000001)) as f32;
            let r = ((0.0f64 - 2.0 * (u1.ln() as f64)).sqrt()) as f32;
            let c = ((6.2831853f64 * (u2 as f64)).cos()) as f32;
            let s = ((6.2831853f64 * (u2 as f64)).sin()) as f32;
            tx += (r * c).abs();
            ty += (r * s).abs();
        }
        sx += tx as f64;
        sy += ty as f64;
    }
    (sx, sy)
}

impl Workload for SpecEp {
    fn name(&self) -> &'static str {
        "352.ep"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "ep"
    }

    fn source(&self) -> String {
        ep_source()
    }

    fn args(&self, scale: Scale) -> Args {
        let (nt, m) = size(scale);
        Args::new().i32("nt", nt as i32).i32("m", m as i32).f32("sx", 0.0).f32("sy", 0.0)
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let (nt, m) = size(scale);
        let (wx, wy) = ep_reference(nt, m);
        let gx = args.scalar("sx").ok_or("missing sx")?.as_f64();
        let gy = args.scalar("sy").ok_or("missing sy")?.as_f64();
        check_scalar(gx, wx, 1e-3)?;
        check_scalar(gy, wy, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn reductions_match_reference() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_clauses()] {
            run_workload(&SpecEp, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn ep_is_compute_heavy() {
        // EP touches no arrays: its only memory traffic is the two final
        // reduction atomics per thread, dwarfed by SFU work.
        let dev = DeviceConfig::k20xm();
        let (report, _) = run_workload(&SpecEp, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let s = &report.kernels[0].stats;
        assert!(s.sfu_insts > s.total_mem_requests(), "{s:?}");
        assert_eq!(s.global_ld_requests + s.readonly_requests, 0);
    }
}
