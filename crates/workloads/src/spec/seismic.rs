//! `355.seismic` — finite-difference elastic wave propagation.
//!
//! Modeled on the SPEC ACCEL seismic benchmark the paper uses as its
//! motivating example (Fig. 8): a Fortran application whose kernels touch
//! several allocatable 3-D arrays that all share dimensions, with the
//! innermost `k` loop sequential — the configuration where the `dim` and
//! `small` clauses save the most registers (Table I) and where aggressive
//! SAFARA alone *overuses* registers and loses occupancy (Fig. 7).
//!
//! Seven hot kernels (velocity updates HOT1–HOT3, stress updates
//! HOT4–HOT7) run per step; HOT3 reproduces the paper's Fig. 8 pattern
//! literally: three same-dimension arrays differenced along the
//! sequential `k` loop.

use crate::util::{check_close_f64, rand_f64};
use crate::{Scale, Suite, Workload};
use safara_core::Args;

/// The 355.seismic-like workload.
pub struct Seismic;

/// Problem size per scale.
pub fn size(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Bench => 30,
    }
}

const ARRAYS: [&str; 12] =
    ["vx", "vy", "vz", "sxx", "syy", "szz", "sxy", "sxz", "syz", "mx", "my", "mz"];

impl Workload for Seismic {
    fn name(&self) -> &'static str {
        "355.seismic"
    }

    fn suite(&self) -> Suite {
        Suite::SpecAccel
    }

    fn entry(&self) -> &'static str {
        "seismic_step"
    }

    fn uses_dim(&self) -> bool {
        true
    }

    fn source(&self) -> String {
        source()
    }

    fn args(&self, scale: Scale) -> Args {
        let n = size(scale);
        let total = n * n * n;
        let mut args = Args::new()
            .i32("nx", n as i32)
            .i32("ny", n as i32)
            .i32("nz", n as i32)
            .f64("h", 0.5)
            .f64("dt", 0.01);
        for (s, name) in ARRAYS.iter().enumerate() {
            args = args.array_f64(name, &rand_f64(100 + s as u64, total, -1.0, 1.0));
        }
        args
    }

    fn check(&self, args: &Args, scale: Scale) -> Result<(), String> {
        let n = size(scale);
        let mut state: Vec<Vec<f64>> = ARRAYS
            .iter()
            .enumerate()
            .map(|(s, _)| rand_f64(100 + s as u64, n * n * n, -1.0, 1.0))
            .collect();
        reference_step(n, 0.5, 0.01, &mut state);
        for (s, name) in ARRAYS.iter().enumerate() {
            let got = args.array(name).ok_or_else(|| format!("missing {name}"))?.as_f64();
            check_close_f64(&got, &state[s], 1e-9).map_err(|m| format!("{name}: {m}"))?;
        }
        Ok(())
    }
}

/// The MiniACC source. All nine arrays share dimensions `[1:nz][1:ny][1:nx]`
/// (Fortran-allocatable-style lower bound 1), so one `dim` group covers
/// them all and `small` covers every subscript.
pub fn source() -> String {
    let arrays: Vec<String> = ARRAYS
        .iter()
        .map(|a| format!("double {a}[1:nz][1:ny][1:nx]"))
        .collect();
    let list = ARRAYS.join(", ");
    format!(
        r#"
void seismic_step(int nx, int ny, int nz, double h, double dt, {params}) {{
  #pragma acc kernels copy({list}) \
      dim((1:nz, 1:ny, 1:nx)({list})) \
      small({list})
  {{
    // HOT1: vx update with a CPML-style memory field (mx).
    #pragma acc loop gang
    for (int j = 2; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 2; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          double dsx = (sxx[k][j][i] - sxx[k][j][i - 1]) / h;
          double dsy = (sxy[k][j][i] - sxy[k][j - 1][i]) / h;
          double dsz = (sxz[k][j][i] - sxz[k - 1][j][i]) / h;
          mx[k][j][i] = 0.9 * mx[k][j][i] + 0.1 * (dsx + dsy + dsz);
          vx[k][j][i] += dt * (dsx + dsy + dsz + mx[k][j][i]);
        }}
      }}
    }}
    // HOT2: vy update with memory field (my).
    #pragma acc loop gang
    for (int j = 2; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 2; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          double dsx = (sxy[k][j][i] - sxy[k][j][i - 1]) / h;
          double dsy = (syy[k][j][i] - syy[k][j - 1][i]) / h;
          double dsz = (syz[k][j][i] - syz[k - 1][j][i]) / h;
          my[k][j][i] = 0.9 * my[k][j][i] + 0.1 * (dsx + dsy + dsz);
          vy[k][j][i] += dt * (dsx + dsy + dsz + my[k][j][i]);
        }}
      }}
    }}
    // HOT3: vz update — the paper's Fig. 8 pattern: three arrays all
    // differenced along the sequential k loop.
    #pragma acc loop gang
    for (int j = 2; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 2; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          double d1 = (sxz[k][j][i] - sxz[k - 1][j][i]) / h;
          double d2 = (syz[k][j][i] - syz[k - 1][j][i]) / h;
          double d3 = (szz[k][j][i] - szz[k - 1][j][i]) / h;
          mz[k][j][i] = 0.9 * mz[k][j][i] + 0.1 * (d1 + d2 + d3);
          vz[k][j][i] += dt * (d1 + d2 + d3 + mz[k][j][i]);
        }}
      }}
    }}
    // HOT4: normal stress updates (reads vx, vy, vz; writes sxx, syy, szz).
    #pragma acc loop gang
    for (int j = 2; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 2; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          double dvx = (vx[k][j][i] - vx[k][j][i - 1]) / h;
          double dvy = (vy[k][j][i] - vy[k][j - 1][i]) / h;
          double dvz = (vz[k][j][i] - vz[k - 1][j][i]) / h;
          sxx[k][j][i] += dt * (2.0 * dvx + dvy + dvz);
          syy[k][j][i] += dt * (dvx + 2.0 * dvy + dvz);
          szz[k][j][i] += dt * (dvx + dvy + 2.0 * dvz);
        }}
      }}
    }}
    // HOT5: sxy shear stress.
    #pragma acc loop gang
    for (int j = 2; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 2; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          sxy[k][j][i] += dt * ((vy[k][j][i] - vy[k][j][i - 1]) / h
                              + (vx[k][j][i] - vx[k][j - 1][i]) / h);
        }}
      }}
    }}
    // HOT6: sxz shear stress (vx differenced along k: inter-iteration).
    #pragma acc loop gang
    for (int j = 2; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 2; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          sxz[k][j][i] += dt * ((vz[k][j][i] - vz[k][j][i - 1]) / h
                              + (vx[k][j][i] - vx[k - 1][j][i]) / h);
        }}
      }}
    }}
    // HOT7: syz shear stress (vy differenced along k).
    #pragma acc loop gang
    for (int j = 2; j <= ny; j++) {{
      #pragma acc loop vector
      for (int i = 2; i <= nx; i++) {{
        #pragma acc loop seq
        for (int k = 2; k <= nz; k++) {{
          syz[k][j][i] += dt * ((vz[k][j][i] - vz[k][j - 1][i]) / h
                              + (vy[k][j][i] - vy[k - 1][j][i]) / h);
        }}
      }}
    }}
  }}
}}
"#,
        params = arrays.join(", "),
        list = list,
    )
}

/// Pure-Rust reference: the same seven kernels, executed in launch order.
/// `state` holds the twelve arrays in [`ARRAYS`] order.
pub fn reference_step(n: usize, h: f64, dt: f64, state: &mut [Vec<f64>]) {
    let idx = |k: usize, j: usize, i: usize| ((k - 1) * n + (j - 1)) * n + (i - 1);
    #[allow(clippy::too_many_arguments)]
    let (vx, vy, vz, sxx, syy, szz, sxy, sxz, syz, mx, my, mz) =
        (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11);

    // HOT1 — vx with memory field mx. Mirrors the device semantics
    // exactly: mx is updated first, then vx reads the *new* mx.
    {
        let snapshot: Vec<Vec<f64>> = state.to_vec();
        for j in 2..=n {
            for i in 2..=n {
                for k in 2..=n {
                    let dsx = (snapshot[sxx][idx(k, j, i)] - snapshot[sxx][idx(k, j, i - 1)]) / h;
                    let dsy = (snapshot[sxy][idx(k, j, i)] - snapshot[sxy][idx(k, j - 1, i)]) / h;
                    let dsz = (snapshot[sxz][idx(k, j, i)] - snapshot[sxz][idx(k - 1, j, i)]) / h;
                    let m = 0.9 * state[mx][idx(k, j, i)] + 0.1 * (dsx + dsy + dsz);
                    state[mx][idx(k, j, i)] = m;
                    state[vx][idx(k, j, i)] += dt * (dsx + dsy + dsz + m);
                }
            }
        }
    }
    // HOT2 — vy with memory field my.
    {
        let snapshot: Vec<Vec<f64>> = state.to_vec();
        for j in 2..=n {
            for i in 2..=n {
                for k in 2..=n {
                    let dsx = (snapshot[sxy][idx(k, j, i)] - snapshot[sxy][idx(k, j, i - 1)]) / h;
                    let dsy = (snapshot[syy][idx(k, j, i)] - snapshot[syy][idx(k, j - 1, i)]) / h;
                    let dsz = (snapshot[syz][idx(k, j, i)] - snapshot[syz][idx(k - 1, j, i)]) / h;
                    let m = 0.9 * state[my][idx(k, j, i)] + 0.1 * (dsx + dsy + dsz);
                    state[my][idx(k, j, i)] = m;
                    state[vy][idx(k, j, i)] += dt * (dsx + dsy + dsz + m);
                }
            }
        }
    }
    // HOT3 — vz with memory field mz (the Fig. 8 pattern).
    {
        let snapshot: Vec<Vec<f64>> = state.to_vec();
        for j in 2..=n {
            for i in 2..=n {
                for k in 2..=n {
                    let d1 = (snapshot[sxz][idx(k, j, i)] - snapshot[sxz][idx(k - 1, j, i)]) / h;
                    let d2 = (snapshot[syz][idx(k, j, i)] - snapshot[syz][idx(k - 1, j, i)]) / h;
                    let d3 = (snapshot[szz][idx(k, j, i)] - snapshot[szz][idx(k - 1, j, i)]) / h;
                    let m = 0.9 * state[mz][idx(k, j, i)] + 0.1 * (d1 + d2 + d3);
                    state[mz][idx(k, j, i)] = m;
                    state[vz][idx(k, j, i)] += dt * (d1 + d2 + d3 + m);
                }
            }
        }
    }
    // HOT4 — normal stresses.
    {
        let snapshot: Vec<Vec<f64>> = state.to_vec();
        for j in 2..=n {
            for i in 2..=n {
                for k in 2..=n {
                    let dvx = (snapshot[vx][idx(k, j, i)] - snapshot[vx][idx(k, j, i - 1)]) / h;
                    let dvy = (snapshot[vy][idx(k, j, i)] - snapshot[vy][idx(k, j - 1, i)]) / h;
                    let dvz = (snapshot[vz][idx(k, j, i)] - snapshot[vz][idx(k - 1, j, i)]) / h;
                    state[sxx][idx(k, j, i)] += dt * (2.0 * dvx + dvy + dvz);
                    state[syy][idx(k, j, i)] += dt * (dvx + 2.0 * dvy + dvz);
                    state[szz][idx(k, j, i)] += dt * (dvx + dvy + 2.0 * dvz);
                }
            }
        }
    }
    // HOT5/6/7 — shear stresses.
    #[allow(clippy::type_complexity)]
    let run = |state: &mut [Vec<f64>],
               target: usize,
               f: &dyn Fn(&[Vec<f64>], usize, usize, usize) -> f64| {
        let snapshot: Vec<Vec<f64>> = state.to_vec();
        for j in 2..=n {
            for i in 2..=n {
                for k in 2..=n {
                    state[target][idx(k, j, i)] += f(&snapshot, k, j, i);
                }
            }
        }
    };
    run(state, sxy, &|s, k, j, i| {
        dt * ((s[vy][idx(k, j, i)] - s[vy][idx(k, j, i - 1)]) / h
            + (s[vx][idx(k, j, i)] - s[vx][idx(k, j - 1, i)]) / h)
    });
    run(state, sxz, &|s, k, j, i| {
        dt * ((s[vz][idx(k, j, i)] - s[vz][idx(k, j, i - 1)]) / h
            + (s[vx][idx(k, j, i)] - s[vx][idx(k - 1, j, i)]) / h)
    });
    run(state, syz, &|s, k, j, i| {
        dt * ((s[vz][idx(k, j, i)] - s[vz][idx(k, j - 1, i)]) / h
            + (s[vy][idx(k, j, i)] - s[vy][idx(k - 1, j, i)]) / h)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use safara_core::{CompilerConfig, DeviceConfig};

    #[test]
    fn seismic_correct_under_base_and_clauses() {
        let dev = DeviceConfig::k20xm();
        for cfg in [CompilerConfig::base(), CompilerConfig::safara_clauses()] {
            run_workload(&Seismic, &cfg, Scale::Test, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn seismic_has_seven_kernels() {
        let (_, program) =
            run_workload(&Seismic, &CompilerConfig::base(), Scale::Test, &DeviceConfig::k20xm())
                .unwrap();
        assert_eq!(program.function("seismic_step").unwrap().kernels.len(), 7);
    }

    #[test]
    fn clauses_reduce_register_usage_table1_shape() {
        // The Table I property: Base ≥ +small ≥ +small+dim, strictly
        // saving overall.
        let dev = DeviceConfig::k20xm();
        let (_, base) = run_workload(&Seismic, &CompilerConfig::base(), Scale::Test, &dev).unwrap();
        let (_, small) =
            run_workload(&Seismic, &CompilerConfig::small(), Scale::Test, &dev).unwrap();
        let (_, dim) =
            run_workload(&Seismic, &CompilerConfig::small_dim(), Scale::Test, &dev).unwrap();
        let b = base.function("seismic_step").unwrap();
        let s = small.function("seismic_step").unwrap();
        let d = dim.function("seismic_step").unwrap();
        let mut saved_total = 0i64;
        for i in 0..7 {
            let rb = b.kernels[i].alloc.regs_used;
            let rs = s.kernels[i].alloc.regs_used;
            let rd = d.kernels[i].alloc.regs_used;
            assert!(rs <= rb, "HOT{}: +small {rs} > base {rb}", i + 1);
            assert!(rd <= rs, "HOT{}: +dim {rd} > +small {rs}", i + 1);
            saved_total += rb as i64 - rd as i64;
        }
        assert!(saved_total > 0, "clauses must save registers overall");
    }
}
