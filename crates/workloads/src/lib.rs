//! # safara-workloads — the evaluation suites
//!
//! Mini-applications modeled on the benchmarks of the paper's evaluation
//! (§V): ten SPEC-ACCEL-like and six NAS-like MiniACC programs. Each
//! workload reproduces the *loop structure, array dimensionality and
//! coalesced/uncoalesced access mix* of the original kernel — the
//! properties SAFARA and the `dim`/`small` clauses act on — at problem
//! sizes an interpreter can execute. The SPEC sources themselves are
//! licensed and cannot be redistributed; DESIGN.md documents this
//! substitution.
//!
//! Fortran-modeled workloads (355.seismic, 356.sp, 363.swim) use
//! lower-bound-1 allocatable-style arrays and carry the proposed `dim` +
//! `small` clauses; C-modeled workloads carry `small` only, matching the
//! paper's observation that `dim` is inapplicable to the C benchmarks.
//!
//! Every workload ships a pure-Rust reference implementation; `check`
//! validates device results against it, so every compiler configuration
//! is differentially tested on every workload.

pub mod nas;
pub mod spec;
pub mod util;

use safara_core::{
    compile, Args, CompileError, CompiledProgram, CompilerConfig, DeviceConfig, LaunchCache, RunReport,
};

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC-ACCEL-like mini-apps.
    SpecAccel,
    /// NAS-OpenACC-like mini-apps.
    NasAcc,
}

/// Problem-size scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for (debug-build) unit tests.
    Test,
    /// The sizes the figure/table harness uses (release builds).
    Bench,
}

/// A benchmark workload.
pub trait Workload: Sync {
    /// Display name, e.g. `355.seismic`.
    fn name(&self) -> &'static str;
    /// Owning suite.
    fn suite(&self) -> Suite;
    /// Entry function inside [`Workload::source`].
    fn entry(&self) -> &'static str;
    /// The MiniACC source.
    fn source(&self) -> String;
    /// Build the argument set for a scale.
    fn args(&self, scale: Scale) -> Args;
    /// Validate device results against the Rust reference.
    fn check(&self, args: &Args, scale: Scale) -> Result<(), String>;
    /// True if the workload's source carries a `dim` clause (Fortran-
    /// modeled apps only).
    fn uses_dim(&self) -> bool {
        false
    }
}

/// All SPEC-like workloads, in the order the figures list them.
pub fn spec_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(spec::ostencil::OStencil),
        Box::new(spec::olbm::OLbm),
        Box::new(spec::omriq::OMriq),
        Box::new(spec::ep::SpecEp),
        Box::new(spec::cg::SpecCg),
        Box::new(spec::seismic::Seismic),
        Box::new(spec::sp::SpecSp),
        Box::new(spec::csp::Csp),
        Box::new(spec::swim::Swim),
        Box::new(spec::bt::SpecBt),
    ]
}

/// All NAS-like workloads (EP, CG, MG, SP, LU, BT).
pub fn nas_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(nas::ep::NasEp),
        Box::new(nas::cg::NasCg),
        Box::new(nas::mg::NasMg),
        Box::new(nas::sp::NasSp),
        Box::new(nas::lu::NasLu),
        Box::new(nas::bt::NasBt),
    ]
}

/// Everything.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    let mut v = spec_suite();
    v.extend(nas_suite());
    v
}

/// Compile + run + validate one workload under a configuration.
/// Returns the run report and the compiled program (for register tables).
pub fn run_workload(
    w: &dyn Workload,
    config: &CompilerConfig,
    scale: Scale,
    dev: &DeviceConfig,
) -> Result<(RunReport, CompiledProgram), CompileError> {
    let program = compile(&w.source(), config)?;
    let mut args = w.args(scale);
    let report = program.run(w.entry(), &mut args, dev)?;
    w.check(&args, scale)
        .map_err(|m| CompileError::Sim { message: format!("{} [{}]: {m}", w.name(), config.name) })?;
    Ok((report, program))
}

/// [`run_workload`] with launch memoization: kernel launches whose
/// content key is already in `cache` are replayed instead of simulated.
/// Validation (`check`) still runs against the replayed buffers, so a
/// cache bug would fail the workload rather than pass silently.
pub fn run_workload_cached(
    w: &dyn Workload,
    config: &CompilerConfig,
    scale: Scale,
    dev: &DeviceConfig,
    cache: &mut LaunchCache,
) -> Result<(RunReport, CompiledProgram), CompileError> {
    let program = compile(&w.source(), config)?;
    let mut args = w.args(scale);
    let report = program.run_cached(w.entry(), &mut args, dev, cache)?;
    w.check(&args, scale)
        .map_err(|m| CompileError::Sim { message: format!("{} [{}]: {m}", w.name(), config.name) })?;
    Ok((report, program))
}
