//! Shared helpers: deterministic data generation and tolerant comparison.
//!
//! Data generation is backed by the in-tree [`SplitMix64`] generator so
//! the whole workspace builds and tests offline; every workload's input
//! is a pure function of its seed.

use safara_core::SplitMix64;

/// Deterministic pseudo-random `f32` data in `[lo, hi)`.
pub fn rand_f32(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.gen_range_f32(lo, hi)).collect()
}

/// Deterministic pseudo-random `f64` data in `[lo, hi)`.
pub fn rand_f64(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.gen_range_f64(lo, hi)).collect()
}

/// Deterministic pseudo-random `i32` data in `[lo, hi)`.
pub fn rand_i32(seed: u64, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.gen_range_i32(lo, hi)).collect()
}

/// Compare two `f32` slices with a mixed absolute/relative tolerance.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(err <= bound)` also catches NaN
pub fn check_close_f32(got: &[f32], want: &[f32], tol: f32) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        let bound = tol * w.abs().max(1.0);
        if !(err <= bound) {
            return Err(format!("element {i}: got {g}, want {w} (|err| {err} > {bound})"));
        }
    }
    Ok(())
}

/// Compare two `f64` slices with a mixed absolute/relative tolerance.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(err <= bound)` also catches NaN
pub fn check_close_f64(got: &[f64], want: &[f64], tol: f64) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        let bound = tol * w.abs().max(1.0);
        if !(err <= bound) {
            return Err(format!("element {i}: got {g}, want {w} (|err| {err} > {bound})"));
        }
    }
    Ok(())
}

/// Compare two scalars.
pub fn check_scalar(got: f64, want: f64, tol: f64) -> Result<(), String> {
    let err = (got - want).abs();
    let bound = tol * want.abs().max(1.0);
    if err <= bound {
        Ok(())
    } else {
        Err(format!("scalar: got {got}, want {want} (|err| {err} > {bound})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(rand_f32(7, 16, 0.0, 1.0), rand_f32(7, 16, 0.0, 1.0));
        assert_ne!(rand_f32(7, 16, 0.0, 1.0), rand_f32(8, 16, 0.0, 1.0));
        assert_eq!(rand_i32(1, 8, 0, 100), rand_i32(1, 8, 0, 100));
    }

    #[test]
    fn comparison_tolerances() {
        assert!(check_close_f32(&[1.0, 2.0], &[1.0, 2.0 + 1e-6], 1e-5).is_ok());
        assert!(check_close_f32(&[1.0], &[1.1], 1e-3).is_err());
        assert!(check_close_f32(&[1.0], &[1.0, 2.0], 1e-3).is_err());
        assert!(check_scalar(100.0, 100.001, 1e-4).is_ok());
        assert!(check_scalar(f64::NAN, 1.0, 1e-4).is_err());
    }

    #[test]
    fn nan_rejected() {
        assert!(check_close_f32(&[f32::NAN], &[1.0], 1e-3).is_err());
    }
}
