//! # safara-chaos — deterministic, seeded fault injection
//!
//! The SAFARA loop only works because it survives an unreliable black
//! box: PTXAS is re-invoked per feedback round and a spilling round is
//! *reverted*, not fatal (paper §III-B.2). A long-lived service built
//! around that pipeline needs the same posture toward every other
//! component — and the only way to *prove* it has it is to break each
//! component on purpose, reproducibly.
//!
//! A [`FaultPlan`] is a seeded schedule of faults evaluated at named
//! [`InjectionPoint`]s threaded through the compile/simulate pipeline
//! and the server. Evaluation is deterministic: each point keeps a
//! sequence counter, and whether the `n`-th arrival at a point faults
//! is a pure function of `(seed, point, n)`. Two runs with the same
//! plan and the same arrival order see the same faults; a plan built by
//! [`FaultPlan::none`] never fires and costs one branch per check.
//!
//! This crate is dependency-free and sits at the bottom of the
//! workspace (like `safara-obs`) so every layer — `gpusim`, `core`,
//! `server` — can thread a plan through without cycles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Named places in the pipeline and server where a fault can fire.
///
/// The point names (see [`InjectionPoint::name`]) are also the spec
/// syntax used by `safara-serve --fault` and [`FaultSpec::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// Front-end parse (`safara_core` pipeline).
    Parse,
    /// Semantic checks.
    Sema,
    /// Reuse analysis.
    Analysis,
    /// One iteration of SAFARA's feedback loop — a [`FaultAction::Spill`]
    /// here forces the "PTXAS reports spilling" path the loop must
    /// survive by reverting the round.
    FeedbackRound,
    /// Final register allocation.
    RegAlloc,
    /// Simulator execution (slow/hung/failed launches).
    Sim,
    /// Launch-cache reads ([`FaultAction::Poison`]-style stale entries).
    CacheRead,
    /// Worker job processing in the server ([`FaultAction::Panic`]).
    WorkerJob,
    /// Reply delivery ([`FaultAction::Hangup`]: the client vanished).
    Reply,
    /// The equality-saturation phase ahead of scalar replacement — a
    /// [`FaultAction::Fail`] here exercises the e-node-cap abort path
    /// (typed `saturate` compile error, never a hang).
    Saturate,
}

/// Number of distinct injection points.
pub const N_POINTS: usize = 10;

impl InjectionPoint {
    /// Every point, in declaration order.
    pub const ALL: [InjectionPoint; N_POINTS] = [
        InjectionPoint::Parse,
        InjectionPoint::Sema,
        InjectionPoint::Analysis,
        InjectionPoint::FeedbackRound,
        InjectionPoint::RegAlloc,
        InjectionPoint::Sim,
        InjectionPoint::CacheRead,
        InjectionPoint::WorkerJob,
        InjectionPoint::Reply,
        InjectionPoint::Saturate,
    ];

    /// Stable index (used for per-point counters and hashing).
    pub fn index(self) -> usize {
        match self {
            InjectionPoint::Parse => 0,
            InjectionPoint::Sema => 1,
            InjectionPoint::Analysis => 2,
            InjectionPoint::FeedbackRound => 3,
            InjectionPoint::RegAlloc => 4,
            InjectionPoint::Sim => 5,
            InjectionPoint::CacheRead => 6,
            InjectionPoint::WorkerJob => 7,
            InjectionPoint::Reply => 8,
            InjectionPoint::Saturate => 9,
        }
    }

    /// The spec-syntax name (`sim`, `worker`, ...).
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::Parse => "parse",
            InjectionPoint::Sema => "sema",
            InjectionPoint::Analysis => "analysis",
            InjectionPoint::FeedbackRound => "feedback",
            InjectionPoint::RegAlloc => "regalloc",
            InjectionPoint::Sim => "sim",
            InjectionPoint::CacheRead => "cache",
            InjectionPoint::WorkerJob => "worker",
            InjectionPoint::Reply => "reply",
            InjectionPoint::Saturate => "saturate",
        }
    }

    /// Inverse of [`InjectionPoint::name`].
    pub fn by_name(s: &str) -> Option<InjectionPoint> {
        InjectionPoint::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The component reports an error (parse error, sim failure, ...).
    Fail,
    /// The register allocator reports spilling (feedback-round points:
    /// the loop must revert, not die).
    Spill,
    /// The component takes `ms` extra milliseconds.
    Delay {
        /// Added latency (clamped by the plan's `max_delay_ms`).
        ms: u64,
    },
    /// The component hangs (a bounded stand-in for "forever": sleeps
    /// the plan's `max_delay_ms`).
    Hang,
    /// The thread panics mid-job (worker isolation must contain it).
    Panic,
    /// A cached entry is silently corrupted before the read (integrity
    /// verification must catch it and fall back to recompute).
    Poison,
    /// The client hangs up before the reply is written.
    Hangup,
}

impl FaultAction {
    /// The spec-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Fail => "fail",
            FaultAction::Spill => "spill",
            FaultAction::Delay { .. } => "delay",
            FaultAction::Hang => "hang",
            FaultAction::Panic => "panic",
            FaultAction::Poison => "poison",
            FaultAction::Hangup => "hangup",
        }
    }
}

/// When a spec fires at its point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fire {
    /// Fire on the first `n` arrivals, then never again — the
    /// deterministic shape smoke tests want ("fail once, then recover").
    First(u64),
    /// Fire each arrival independently with probability `p`, decided by
    /// a hash of `(seed, point, spec, sequence)` — reproducible noise.
    Prob(f64),
}

/// One scheduled fault: where, what, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The injection point this spec watches.
    pub point: InjectionPoint,
    /// The fault it injects.
    pub action: FaultAction,
    /// The firing rule.
    pub fire: Fire,
}

impl FaultSpec {
    /// Parse the CLI spec syntax: `point:action[:count][:ms]`.
    ///
    /// `count` is an integer (`Fire::First`) or a probability with a
    /// decimal point (`Fire::Prob`); it defaults to `1`. `delay` takes
    /// a trailing `ms` field (default 10). Examples:
    ///
    /// ```text
    /// sim:fail:1        # the first simulation fails
    /// sim:delay:0.25:50 # 25% of simulations take +50 ms
    /// worker:panic:2    # the first two jobs panic their worker
    /// cache:poison:0.5  # half of cache reads hit a corrupted entry
    /// ```
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 2 || parts.len() > 4 {
            return Err(format!("bad fault spec `{s}` (want point:action[:count][:ms])"));
        }
        let point = InjectionPoint::by_name(parts[0])
            .ok_or_else(|| format!("unknown injection point `{}`", parts[0]))?;
        let fire = match parts.get(2) {
            None => Fire::First(1),
            Some(c) if c.contains('.') => {
                let p: f64 = c.parse().map_err(|_| format!("bad probability `{c}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{c}` out of [0,1]"));
                }
                Fire::Prob(p)
            }
            Some(c) => Fire::First(c.parse().map_err(|_| format!("bad count `{c}`"))?),
        };
        let action = match parts[1] {
            "fail" => FaultAction::Fail,
            "spill" => FaultAction::Spill,
            "delay" => FaultAction::Delay {
                ms: match parts.get(3) {
                    None => 10,
                    Some(ms) => ms.parse().map_err(|_| format!("bad delay ms `{ms}`"))?,
                },
            },
            "hang" => FaultAction::Hang,
            "panic" => FaultAction::Panic,
            "poison" => FaultAction::Poison,
            "hangup" => FaultAction::Hangup,
            other => return Err(format!("unknown fault action `{other}`")),
        };
        Ok(FaultSpec { point, action, fire })
    }
}

/// SplitMix64 step — the mixing function behind [`Fire::Prob`]
/// decisions and [`FaultPlan::jitter`]. Public because retrying clients
/// want the same dependency-free determinism for backoff jitter.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded fault schedule, shareable across threads.
///
/// All state is atomic: many worker threads can call
/// [`FaultPlan::check`] concurrently. Determinism holds per point —
/// the `n`-th arrival at a point always gets the same decision for a
/// given seed, whichever thread makes it.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
    /// Arrivals per point (the sequence number source).
    seqs: [AtomicU64; N_POINTS],
    /// Faults actually fired per point.
    fired: [AtomicU64; N_POINTS],
    /// Upper bound for `Delay` sleeps and the stand-in duration for
    /// `Hang` — chaos must never wedge a test harness for real.
    max_delay_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The no-fault plan: [`FaultPlan::check`] always answers `None`
    /// without touching the counters.
    pub fn none() -> FaultPlan {
        Self::seeded(0)
    }

    /// An empty plan with a seed; add faults with [`FaultPlan::with`].
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
            seqs: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
            max_delay_ms: 2_000,
        }
    }

    /// Add one fault spec (builder-style).
    pub fn with(mut self, point: InjectionPoint, action: FaultAction, fire: Fire) -> FaultPlan {
        self.specs.push(FaultSpec { point, action, fire });
        self
    }

    /// Add a parsed CLI spec.
    pub fn with_spec(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Change the delay/hang clamp.
    pub fn with_max_delay_ms(mut self, ms: u64) -> FaultPlan {
        self.max_delay_ms = ms;
        self
    }

    /// True when the plan can never fire.
    pub fn is_inert(&self) -> bool {
        self.specs.is_empty()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Evaluate one arrival at `point`. Increments the point's sequence
    /// counter and returns the injected fault, if any. The first
    /// matching spec wins.
    pub fn check(&self, point: InjectionPoint) -> Option<FaultAction> {
        if self.specs.is_empty() {
            return None;
        }
        let i = point.index();
        let seq = self.seqs[i].fetch_add(1, Ordering::Relaxed);
        for (si, spec) in self.specs.iter().enumerate() {
            if spec.point != point {
                continue;
            }
            let fires = match spec.fire {
                Fire::First(n) => seq < n,
                Fire::Prob(p) => {
                    let h = splitmix64(
                        self.seed
                            ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            ^ (si as u64) << 56
                            ^ seq.wrapping_mul(0xd1b5_4a32_d192_ed03),
                    );
                    (h as f64 / u64::MAX as f64) < p
                }
            };
            if fires {
                self.fired[i].fetch_add(1, Ordering::Relaxed);
                return Some(spec.action);
            }
        }
        None
    }

    /// How long a `Delay`/`Hang` action sleeps under this plan's clamp;
    /// 0 for non-delaying actions.
    pub fn delay_ms(&self, action: &FaultAction) -> u64 {
        match action {
            FaultAction::Delay { ms } => (*ms).min(self.max_delay_ms),
            FaultAction::Hang => self.max_delay_ms,
            _ => 0,
        }
    }

    /// Sleep out a `Delay`/`Hang` action (no-op otherwise). Returns
    /// true when it slept.
    pub fn apply_delay(&self, action: &FaultAction) -> bool {
        let ms = self.delay_ms(action);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        ms > 0
    }

    /// Arrivals observed at `point`.
    pub fn arrivals(&self, point: InjectionPoint) -> u64 {
        self.seqs[point.index()].load(Ordering::Relaxed)
    }

    /// Faults fired at `point`.
    pub fn fired(&self, point: InjectionPoint) -> u64 {
        self.fired[point.index()].load(Ordering::Relaxed)
    }

    /// Faults fired across all points.
    pub fn fired_total(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Decorrelated-jitter backoff: the AWS-style retry schedule, seeded so
/// a retrying client's sleep sequence is reproducible.
///
/// Each step draws uniformly from `[base_ms, prev * 3]`, clamped to
/// `cap_ms` — backing off exponentially in expectation while two
/// clients that failed together immediately decorrelate.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
    state: u64,
}

impl Backoff {
    /// A backoff schedule starting at `base_ms`, clamped at `cap_ms`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff { base_ms, cap_ms: cap_ms.max(base_ms), prev_ms: base_ms, state: seed }
    }

    /// The next sleep duration in milliseconds.
    pub fn next_ms(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let r = splitmix64(self.state);
        let hi = (self.prev_ms.saturating_mul(3)).clamp(self.base_ms + 1, self.cap_ms);
        let ms = self.base_ms + r % (hi - self.base_ms + 1);
        self.prev_ms = ms;
        ms.min(self.cap_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires_and_counts_nothing() {
        let plan = FaultPlan::none();
        for point in InjectionPoint::ALL {
            for _ in 0..100 {
                assert_eq!(plan.check(point), None);
            }
            assert_eq!(plan.arrivals(point), 0, "inert plan skips counters");
        }
        assert!(plan.is_inert());
        assert_eq!(plan.fired_total(), 0);
    }

    #[test]
    fn first_n_fires_exactly_n_times() {
        let plan = FaultPlan::seeded(7).with(
            InjectionPoint::Sim,
            FaultAction::Fail,
            Fire::First(3),
        );
        let fired: Vec<bool> =
            (0..10).map(|_| plan.check(InjectionPoint::Sim).is_some()).collect();
        assert_eq!(fired, [true, true, true, false, false, false, false, false, false, false]);
        assert_eq!(plan.fired(InjectionPoint::Sim), 3);
        assert_eq!(plan.arrivals(InjectionPoint::Sim), 10);
        // Other points are untouched.
        assert_eq!(plan.check(InjectionPoint::Parse), None);
    }

    #[test]
    fn prob_decisions_are_deterministic_per_seed_and_sequence() {
        let decide = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).with(
                InjectionPoint::CacheRead,
                FaultAction::Poison,
                Fire::Prob(0.5),
            );
            (0..64).map(|_| plan.check(InjectionPoint::CacheRead).is_some()).collect()
        };
        assert_eq!(decide(42), decide(42), "same seed, same schedule");
        assert_ne!(decide(42), decide(43), "different seed, different schedule");
        let hits = decide(42).iter().filter(|b| **b).count();
        assert!((16..=48).contains(&hits), "p=0.5 over 64 draws fired {hits} times");
    }

    #[test]
    fn prob_zero_and_one_are_exact() {
        let never = FaultPlan::seeded(1).with(
            InjectionPoint::Sim,
            FaultAction::Fail,
            Fire::Prob(0.0),
        );
        let always = FaultPlan::seeded(1).with(
            InjectionPoint::Sim,
            FaultAction::Fail,
            Fire::Prob(1.0),
        );
        for _ in 0..50 {
            assert_eq!(never.check(InjectionPoint::Sim), None);
            assert!(always.check(InjectionPoint::Sim).is_some());
        }
    }

    #[test]
    fn first_matching_spec_wins() {
        let plan = FaultPlan::seeded(0)
            .with(InjectionPoint::Sim, FaultAction::Fail, Fire::First(1))
            .with(InjectionPoint::Sim, FaultAction::Hang, Fire::First(10));
        assert_eq!(plan.check(InjectionPoint::Sim), Some(FaultAction::Fail));
        assert_eq!(plan.check(InjectionPoint::Sim), Some(FaultAction::Hang));
    }

    #[test]
    fn delays_are_clamped() {
        let plan = FaultPlan::seeded(0).with_max_delay_ms(25);
        assert_eq!(plan.delay_ms(&FaultAction::Delay { ms: 10 }), 10);
        assert_eq!(plan.delay_ms(&FaultAction::Delay { ms: 99_999 }), 25);
        assert_eq!(plan.delay_ms(&FaultAction::Hang), 25);
        assert_eq!(plan.delay_ms(&FaultAction::Fail), 0);
        assert!(!plan.apply_delay(&FaultAction::Fail));
    }

    #[test]
    fn spec_syntax_roundtrips() {
        let s = FaultSpec::parse("sim:fail:1").unwrap();
        assert_eq!(s.point, InjectionPoint::Sim);
        assert_eq!(s.action, FaultAction::Fail);
        assert_eq!(s.fire, Fire::First(1));

        let s = FaultSpec::parse("sim:delay:0.25:50").unwrap();
        assert_eq!(s.action, FaultAction::Delay { ms: 50 });
        assert_eq!(s.fire, Fire::Prob(0.25));

        let s = FaultSpec::parse("worker:panic").unwrap();
        assert_eq!(s.point, InjectionPoint::WorkerJob);
        assert_eq!(s.fire, Fire::First(1));

        let s = FaultSpec::parse("cache:poison:0.5").unwrap();
        assert_eq!(s.action, FaultAction::Poison);

        for bad in [
            "sim", "nowhere:fail", "sim:dance", "sim:fail:x", "sim:fail:1.5",
            "sim:delay:1:zz", "a:b:c:d:e",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn concurrent_checks_conserve_fires() {
        let plan = std::sync::Arc::new(FaultPlan::seeded(9).with(
            InjectionPoint::WorkerJob,
            FaultAction::Panic,
            Fire::First(5),
        ));
        let fired: u64 = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let plan = std::sync::Arc::clone(&plan);
                    s.spawn(move || {
                        (0..100)
                            .filter(|_| plan.check(InjectionPoint::WorkerJob).is_some())
                            .count() as u64
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(fired, 5, "exactly the first five arrivals fault");
        assert_eq!(plan.arrivals(InjectionPoint::WorkerJob), 400);
    }

    #[test]
    fn backoff_grows_decorrelates_and_clamps() {
        let mut b = Backoff::new(10, 400, 1);
        let seq: Vec<u64> = (0..12).map(|_| b.next_ms()).collect();
        assert!(seq.iter().all(|&ms| (10..=400).contains(&ms)), "{seq:?}");
        assert!(seq.iter().max().unwrap() > &100, "eventually backs off: {seq:?}");
        // Reproducible per seed, different across seeds.
        let replay: Vec<u64> = {
            let mut b = Backoff::new(10, 400, 1);
            (0..12).map(|_| b.next_ms()).collect()
        };
        assert_eq!(seq, replay);
        let other: Vec<u64> = {
            let mut b = Backoff::new(10, 400, 2);
            (0..12).map(|_| b.next_ms()).collect()
        };
        assert_ne!(seq, other);
    }
}
