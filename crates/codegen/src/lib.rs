//! # safara-codegen — lowering OpenACC offload regions to VIR
//!
//! Mirrors the back-end of the paper's OpenUH pipeline (Fig. 2): each
//! loop nest inside a `kernels`/`parallel` region becomes one device
//! kernel in the [`safara_gpusim::vir`] virtual ISA.
//!
//! The pieces the paper's proposals act on live here:
//!
//! * **Dope vectors** (§IV-A): a dynamically-sized array parameter is
//!   passed as a base pointer plus per-dimension extent/lower-bound
//!   scalars; subscript lowering consumes those scalars, which is what
//!   inflates register use in kernels touching many arrays.
//! * **`dim` groups**: arrays asserted dimension-equal *share* one set of
//!   dope scalars, and emission-time value numbering then collapses their
//!   offset computations to a single expression (the 15 → 5 scalars
//!   example of §IV-A).
//! * **`small` clause** (§IV-B): subscript arithmetic is emitted in
//!   32-bit (`b32`) instead of 64-bit, halving the registers offsets
//!   occupy (GPU registers are 32-bit; b64 values need aligned pairs).
//! * **Read-only cache**: arrays never written in the region load through
//!   the Kepler read-only data path when enabled.
//!
//! [`abi`] describes the kernel parameter layout for the runtime;
//! [`lower`] is the emitter; [`dce`] is a liveness-based dead-code
//! eliminator run after emission (so unused dope loads vanish exactly
//! when clauses make them redundant).

pub mod abi;
pub mod dce;
pub mod lower;

pub use abi::{AbiParam, DimOwner, KernelAbi};
pub use lower::{lower_function, CompiledKernel, MappedLoopSpec};

use std::fmt;

/// Code generation options — the knobs the compiler profiles in
/// `safara-core` turn.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenOptions {
    /// Route loads of never-written arrays through the read-only cache.
    pub use_readonly_cache: bool,
    /// Honor `small` clauses: 32-bit offset arithmetic for listed arrays.
    pub honor_small: bool,
    /// Honor `dim` groups: shared dope scalars for grouped arrays.
    pub honor_dim: bool,
    /// Emission-time local value numbering (CSE within an iteration).
    pub local_cse: bool,
    /// Run dead-code elimination after emission.
    pub dce: bool,
    /// Default vector length (block x size) when no clause specifies one.
    pub default_vector_length: u32,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            use_readonly_cache: true,
            honor_small: true,
            honor_dim: true,
            local_cse: true,
            dce: true,
            default_vector_length: 128,
        }
    }
}

impl CodegenOptions {
    /// The "base OpenUH" configuration: competent codegen (CSE, DCE,
    /// read-only cache) but the proposed clauses are ignored.
    pub fn base() -> Self {
        CodegenOptions { honor_small: false, honor_dim: false, ..Default::default() }
    }

    /// A PGI-15.9-like simulated comparator: no clause support (the
    /// clauses are our proposal), no read-only-cache loads, and no local
    /// CSE across arrays — a competent but differently-tuned compiler.
    /// Documented as a *simulated* baseline in DESIGN.md.
    pub fn pgi_like() -> Self {
        CodegenOptions {
            use_readonly_cache: false,
            honor_small: false,
            honor_dim: false,
            local_cse: false,
            ..Default::default()
        }
    }
}

/// Code generation errors.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenError {
    /// Human-readable message.
    pub message: String,
}

impl CodegenError {
    pub(crate) fn new(m: impl Into<String>) -> Self {
        CodegenError { message: m.into() }
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}
