//! The VIR emitter: lowers each loop nest of an offload region into one
//! device kernel.
//!
//! Layout of an emitted kernel:
//!
//! ```text
//! entry:   ld.param for every used scalar / array base / dope value
//!          reduction accumulators ← identity
//!          gidx_d = ctaid.d * ntid.d + tid.d          (per mapped dim)
//!          var_d  = lo_d + gidx_d * step_d
//!          guard: @!(var_d cmp bound_d) bra EXIT      (per mapped dim)
//! body:    lowered statements (seq loops become branches)
//! EXIT:    atom.add reduction slots
//!          ret
//! ```
//!
//! Offset lowering implements the paper's two clauses: `small` switches
//! the subscript arithmetic type from `b64` to `b32`, and `dim` makes
//! grouped arrays share dope scalars so the emission-time value numbering
//! collapses their offset expressions into one.

use crate::abi::{AbiParam, DimOwner, KernelAbi};
use crate::{CodegenError, CodegenOptions};
use safara_analysis::memspace::{classify_arrays, ArrayUsage};
use safara_analysis::region::{RegionInfo, ThreadDim};
use safara_analysis::ArraySpace;
use safara_gpusim::vir::*;
use safara_ir::offset::{row_major_offset, OffsetAlgebra};
use safara_ir::*;
use std::collections::{BTreeMap, HashMap};

/// A parallel loop mapped onto a thread-grid dimension; the runtime
/// evaluates the expressions against the host scalar environment to
/// compute the launch geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedLoopSpec {
    /// Induction variable.
    pub var: Ident,
    /// Initial value expression.
    pub lo: Expr,
    /// Comparison.
    pub cmp: LoopCmp,
    /// Bound expression.
    pub bound: Expr,
    /// Constant step.
    pub step: i64,
    /// `gang(e)` argument, if given.
    pub gang: Option<Expr>,
    /// `vector(e)` argument, if given.
    pub vector: Option<Expr>,
}

/// One compiled kernel: VIR + ABI + launch information.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// Kernel name (`<function>_k<n>`).
    pub name: String,
    /// The instruction stream.
    pub vir: KernelVir,
    /// Parameter marshaling recipe.
    pub abi: KernelAbi,
    /// Mapped loops indexed by thread dimension (0 = x).
    pub mapped: Vec<MappedLoopSpec>,
    /// Snapshot of the region's `dim` groups (member arrays per group),
    /// so the runtime can resolve group-owned dope parameters.
    pub dim_groups: Vec<Vec<Ident>>,
    /// The region's `launch_bounds(T, B)` contract, if declared:
    /// `(max_threads_per_block, min_blocks_per_sm)` with `B` defaulted
    /// to 1. Sema guarantees both are positive constants.
    pub launch_bounds: Option<(u32, u32)>,
}

/// Lower every offload region of `func`; returns one [`CompiledKernel`]
/// per top-level loop nest per region, in source order.
pub fn lower_function(
    func: &Function,
    opts: &CodegenOptions,
) -> Result<Vec<CompiledKernel>, CodegenError> {
    let mut out = Vec::new();
    let mut counter = 0usize;
    for region in func.regions() {
        if region.body.iter().all(|s| matches!(s, Stmt::For(_))) {
            // The normal case: one kernel per top-level loop nest.
            for stmt in &region.body {
                let nest_region = OffloadRegion {
                    directive: region.directive.clone(),
                    body: vec![stmt.clone()],
                    span: region.span,
                };
                let name = format!("{}_k{}", func.name, counter);
                counter += 1;
                out.push(lower_nest(func, &nest_region, opts, name)?);
            }
        } else {
            // Degenerate case — e.g. Carr–Kennedy sequentialized the
            // top-level loop, leaving a guard `if` around it: the whole
            // region runs as a single-thread kernel. Only legal when no
            // loop inside is still parallelized.
            let info = RegionInfo::analyze(region);
            if info.loops.iter().any(|l| l.mapped.is_some()) {
                return Err(CodegenError::new(
                    "offload region mixes parallel loop nests with other statements; \
                     hoist the statements or mark the loops seq",
                ));
            }
            let name = format!("{}_k{}", func.name, counter);
            counter += 1;
            out.push(lower_nest(func, region, opts, name)?);
        }
    }
    Ok(out)
}

fn lower_nest(
    func: &Function,
    region: &OffloadRegion,
    opts: &CodegenOptions,
    name: String,
) -> Result<CompiledKernel, CodegenError> {
    let info = RegionInfo::analyze(region);
    let usage = classify_arrays(&func.params, region);
    let mut em = Emitter {
        func,
        clauses: &region.directive.clauses,
        opts,
        usage,
        info,
        kernel: KernelVir { name: name.clone(), ..Default::default() },
        abi: KernelAbi::default(),
        entry: Vec::new(),
        code: Vec::new(),
        env: HashMap::new(),
        array_base: HashMap::new(),
        dope: HashMap::new(),
        memo: vec![HashMap::new()],
        next_label: 0,
        exit_label: Label(0),
        reductions: BTreeMap::new(),
        mapped: Vec::new(),
    };
    em.exit_label = em.fresh_label();
    em.run(region)?;
    let mut vir = em.kernel;
    let mut insts = em.entry;
    insts.extend(em.code);
    vir.insts = insts;
    vir.params = em
        .abi
        .params
        .iter()
        .map(|p| match p {
            AbiParam::Scalar { ty, .. } => ParamDecl::Scalar(vty(*ty)),
            AbiParam::DimExtent { .. } | AbiParam::DimLower { .. } => ParamDecl::Scalar(VType::B32),
            AbiParam::ArrayBase { .. } | AbiParam::ReductionSlot { .. } => ParamDecl::Ptr,
        })
        .collect();
    if opts.dce {
        crate::dce::eliminate_dead_code(&mut vir);
    }
    let dim_groups =
        region.directive.clauses.dim_groups.iter().map(|g| g.arrays.clone()).collect();
    let launch_bounds = region.directive.clauses.launch_bounds.as_ref().map(|lb| {
        let t = lb.max_threads.as_const().unwrap_or(0).max(0) as u32;
        let b = lb
            .min_blocks
            .as_ref()
            .and_then(|e| e.as_const())
            .unwrap_or(1)
            .max(1) as u32;
        (t, b)
    });
    Ok(CompiledKernel { name, vir, abi: em.abi, mapped: em.mapped, dim_groups, launch_bounds })
}

/// Map a source scalar type to its VIR register type.
pub fn vty(t: ScalarTy) -> VType {
    match t {
        ScalarTy::I32 => VType::B32,
        ScalarTy::I64 => VType::B64,
        ScalarTy::F32 => VType::F32,
        ScalarTy::F64 => VType::F64,
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    reg: VReg,
    ty: VType,
}

type MemoKey = (&'static str, u8, [u64; 3]);

struct Emitter<'a> {
    func: &'a Function,
    clauses: &'a RegionClauses,
    opts: &'a CodegenOptions,
    usage: BTreeMap<Ident, ArrayUsage>,
    info: RegionInfo,
    kernel: KernelVir,
    abi: KernelAbi,
    entry: Vec<Inst>,
    code: Vec<Inst>,
    env: HashMap<Ident, Slot>,
    array_base: HashMap<Ident, VReg>,
    dope: HashMap<(String, usize, bool), VReg>, // (owner key, dim, is_lower)
    memo: Vec<HashMap<MemoKey, VReg>>,
    next_label: u32,
    exit_label: Label,
    reductions: BTreeMap<Ident, (ReduceOp, Slot, u32)>, // var → (op, acc, slot param ix)
    mapped: Vec<MappedLoopSpec>,
}

impl<'a> Emitter<'a> {
    fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn vreg(&mut self, ty: VType) -> VReg {
        self.kernel.new_vreg(ty)
    }

    fn emit(&mut self, i: Inst) {
        self.code.push(i);
    }

    // ------------------------------------------------------------ memo

    fn memo_get(&self, key: &MemoKey) -> Option<VReg> {
        self.memo.iter().rev().find_map(|m| m.get(key).copied())
    }

    fn memo_put(&mut self, key: MemoKey, r: VReg) {
        if self.opts.local_cse {
            self.memo.last_mut().expect("memo stack never empty").insert(key, r);
        }
    }

    fn memo_push(&mut self) {
        self.memo.push(HashMap::new());
    }

    fn memo_pop(&mut self) {
        self.memo.pop();
        debug_assert!(!self.memo.is_empty());
    }

    /// Remove memo entries mentioning a register that was just mutated
    /// (as an operand or as the memoized result).
    fn memo_purge(&mut self, r: VReg) {
        let needle = ((r.0 as u64) << 1) | 1;
        for m in &mut self.memo {
            m.retain(|(_, _, ops), v| ops[0] != needle && ops[1] != needle && *v != r);
        }
    }

    fn op_key(o: &Operand) -> u64 {
        match o {
            Operand::Reg(r) => ((r.0 as u64) << 1) | 1,
            Operand::ImmI(v) => (*v as u64) << 1,
            Operand::ImmF(v) => v.to_bits() << 1,
        }
    }

    /// Emit a pure binary op with value numbering.
    fn alu(&mut self, op: AluOp, ty: VType, a: Operand, b: Operand) -> Operand {
        // Constant folding for integer immediates.
        if let (Operand::ImmI(x), Operand::ImmI(y)) = (a, b) {
            if !ty.is_float() {
                let f = match op {
                    AluOp::Add => Some(x.wrapping_add(y)),
                    AluOp::Sub => Some(x.wrapping_sub(y)),
                    AluOp::Mul => Some(x.wrapping_mul(y)),
                    AluOp::Div if y != 0 => Some(x.wrapping_div(y)),
                    // In-range counts only, matching `Expr::as_const`:
                    // the engines mask per operand width at run time.
                    AluOp::Shl if (0..32).contains(&y) => Some(x.wrapping_shl(y as u32)),
                    _ => None,
                };
                if let Some(v) = f {
                    return Operand::ImmI(v);
                }
            }
        }
        // Identities: x+0, x*1, x-0.
        match (op, a, b) {
            (AluOp::Add | AluOp::Sub, a, Operand::ImmI(0)) => return a,
            (AluOp::Add, Operand::ImmI(0), b) => return b,
            (AluOp::Mul, a, Operand::ImmI(1)) => return a,
            (AluOp::Mul, Operand::ImmI(1), b) => return b,
            (AluOp::Mul, _, Operand::ImmI(0)) | (AluOp::Mul, Operand::ImmI(0), _) => {
                return Operand::ImmI(0)
            }
            (AluOp::Shl, a, Operand::ImmI(0)) => return a,
            (AluOp::Shl, Operand::ImmI(0), _) => return Operand::ImmI(0),
            _ => {}
        }
        let tag: &'static str = match op {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        };
        let key: MemoKey = (tag, ty_code(ty), [Self::op_key(&a), Self::op_key(&b), 2]);
        if let Some(r) = self.memo_get(&key) {
            return Operand::Reg(r);
        }
        let d = self.vreg(ty);
        self.emit(Inst::Alu { op, ty, d, a, b });
        self.memo_put(key, d);
        Operand::Reg(d)
    }

    /// Emit a conversion with value numbering (or fold immediates).
    fn cvt(&mut self, dty: VType, aty: VType, a: Operand) -> Operand {
        if dty == aty {
            return a;
        }
        match a {
            Operand::ImmI(v) => {
                return if dty.is_float() { Operand::ImmF(v as f64) } else { Operand::ImmI(v) }
            }
            Operand::ImmF(v) => {
                return if dty.is_float() { Operand::ImmF(v) } else { Operand::ImmI(v as i64) }
            }
            Operand::Reg(_) => {}
        }
        let key: MemoKey = ("cvt", ty_code(dty) * 16 + ty_code(aty), [Self::op_key(&a), 0, 1]);
        if let Some(r) = self.memo_get(&key) {
            return Operand::Reg(r);
        }
        let d = self.vreg(dty);
        self.emit(Inst::Cvt { dty, d, aty, a });
        self.memo_put(key, d);
        Operand::Reg(d)
    }

    // -------------------------------------------------- params and dope

    fn param_slot(&mut self, name: &Ident) -> Result<Slot, CodegenError> {
        if let Some(s) = self.env.get(name) {
            return Ok(*s);
        }
        match self.func.param(name) {
            Some(Param::Scalar { ty, .. }) => {
                let t = vty(*ty);
                let ix = self.abi.intern(AbiParam::Scalar { name: name.clone(), ty: *ty });
                let d = self.vreg(t);
                self.entry.push(Inst::LdParam { ty: t, d, index: ix });
                let slot = Slot { reg: d, ty: t };
                self.env.insert(name.clone(), slot);
                Ok(slot)
            }
            Some(Param::Array { .. }) => Err(CodegenError::new(format!(
                "array `{name}` used where a scalar is required"
            ))),
            None => Err(CodegenError::new(format!("undeclared variable `{name}`"))),
        }
    }

    fn base_of(&mut self, array: &Ident) -> VReg {
        if let Some(r) = self.array_base.get(array) {
            return *r;
        }
        let ix = self.abi.intern(AbiParam::ArrayBase { array: array.clone() });
        let d = self.vreg(VType::B64);
        self.entry.push(Inst::LdParam { ty: VType::B64, d, index: ix });
        self.array_base.insert(array.clone(), d);
        d
    }

    fn dope_value(&mut self, owner: &DimOwner, dim: usize, is_lower: bool) -> VReg {
        let key = (
            match owner {
                DimOwner::Array(a) => format!("a:{a}"),
                DimOwner::Group(g) => format!("g:{g}"),
            },
            dim,
            is_lower,
        );
        if let Some(r) = self.dope.get(&key) {
            return *r;
        }
        let p = if is_lower {
            AbiParam::DimLower { owner: owner.clone(), dim }
        } else {
            AbiParam::DimExtent { owner: owner.clone(), dim }
        };
        let ix = self.abi.intern(p);
        let d = self.vreg(VType::B32);
        self.entry.push(Inst::LdParam { ty: VType::B32, d, index: ix });
        self.dope.insert(key, d);
        d
    }

    // ------------------------------------------------------- the driver

    fn run(&mut self, region: &OffloadRegion) -> Result<(), CodegenError> {
        // The nest: descend through parallel loops, emitting index
        // computation + guard for each, then lower the first
        // non-parallel level as ordinary statements. A region whose body
        // is not a single loop nest (fully sequentialized code) lowers as
        // plain statements on one thread.
        if region.body.len() == 1 {
            if let Stmt::For(top) = &region.body[0] {
                self.lower_parallel_chain(top)?;
                self.finish()?;
                return Ok(());
            }
        }
        for s in &region.body {
            self.lower_stmt(s)?;
        }
        self.finish()
    }

    fn finish(&mut self) -> Result<(), CodegenError> {
        self.emit(Inst::Mark(self.exit_label));
        // Flush reductions.
        let flush: Vec<(Ident, (ReduceOp, Slot, u32))> =
            self.reductions.iter().map(|(k, v)| (k.clone(), *v)).collect();
        for (_, (op, acc, ix)) in flush {
            if op != ReduceOp::Add {
                return Err(CodegenError::new(
                    "only `+` reductions are supported by the device code generator",
                ));
            }
            let addr = self.vreg(VType::B64);
            self.entry.push(Inst::LdParam { ty: VType::B64, d: addr, index: ix });
            self.emit(Inst::AtomAdd { ty: acc.ty, addr, a: acc.reg.into() });
        }
        self.emit(Inst::Ret);
        Ok(())
    }

    fn lower_parallel_chain(&mut self, f: &ForLoop) -> Result<(), CodegenError> {
        let li = self
            .info
            .loop_of(&f.var)
            .ok_or_else(|| CodegenError::new(format!("loop `{}` missing from analysis", f.var)))?
            .clone();
        match li.mapped {
            Some(dim) => {
                self.begin_mapped_loop(f, dim)?;
                // The body must be either exactly one nested parallel
                // loop, or contain no parallel loops at all.
                let inner_parallel = f.body.iter().any(|s| {
                    matches!(s, Stmt::For(g) if self.info.loop_of(&g.var).is_some_and(|l| l.mapped.is_some()))
                });
                if inner_parallel {
                    if f.body.len() != 1 {
                        return Err(CodegenError::new(format!(
                            "parallel loop `{}` mixes statements with a nested parallel loop; \
                             hoist the statements or mark the inner loop seq",
                            f.var
                        )));
                    }
                    let Stmt::For(inner) = &f.body[0] else { unreachable!() };
                    self.lower_parallel_chain(inner)?;
                } else {
                    for s in &f.body {
                        self.lower_stmt(s)?;
                    }
                }
                Ok(())
            }
            None => {
                // Top of the nest is already sequential: a degenerate
                // single-thread kernel.
                self.lower_stmt(&Stmt::For(Box::new(f.clone())))
            }
        }
    }

    fn begin_mapped_loop(&mut self, f: &ForLoop, dim: ThreadDim) -> Result<(), CodegenError> {
        let d = dim.index() as u8;
        let dir = f.directive.clone().unwrap_or_default();
        self.mapped.resize(
            self.mapped.len().max(dim.index() + 1),
            MappedLoopSpec {
                var: f.var.clone(),
                lo: Expr::IntLit(0),
                cmp: LoopCmp::Lt,
                bound: Expr::IntLit(0),
                step: 1,
                gang: None,
                vector: None,
            },
        );
        self.mapped[dim.index()] = MappedLoopSpec {
            var: f.var.clone(),
            lo: f.lo.clone(),
            cmp: f.cmp,
            bound: f.bound.clone(),
            step: f.step,
            gang: dir.gang.clone().flatten(),
            vector: dir.vector.clone().flatten(),
        };
        // gidx = ctaid.d * ntid.d + tid.d
        let tid = self.vreg(VType::B32);
        self.emit(Inst::Special { d: tid, r: SpecialReg::Tid(d) });
        let cta = self.vreg(VType::B32);
        self.emit(Inst::Special { d: cta, r: SpecialReg::CtaId(d) });
        let ntid = self.vreg(VType::B32);
        self.emit(Inst::Special { d: ntid, r: SpecialReg::NTid(d) });
        let t0 = self.alu(AluOp::Mul, VType::B32, cta.into(), ntid.into());
        let gidx = self.alu(AluOp::Add, VType::B32, t0, tid.into());
        // var = lo + gidx * step
        let (lo, loty) = self.lower_expr(&f.lo)?;
        let lo = self.cvt(VType::B32, loty, lo);
        let scaled = self.alu(AluOp::Mul, VType::B32, gidx, Operand::ImmI(f.step));
        let v = self.alu(AluOp::Add, VType::B32, lo, scaled);
        // Materialize into a dedicated register so the variable has a
        // stable home (it is immutable inside the kernel).
        let var_reg = self.vreg(VType::B32);
        self.emit(Inst::Mov { ty: VType::B32, d: var_reg, a: v });
        self.env.insert(f.var.clone(), Slot { reg: var_reg, ty: VType::B32 });
        // Guard: if !(var cmp bound) goto exit.
        let (bound, bty) = self.lower_expr(&f.bound)?;
        let bound = self.cvt(VType::B32, bty, bound);
        let p = self.vreg(VType::Pred);
        let cmp = match f.cmp {
            LoopCmp::Lt => CmpOp::Lt,
            LoopCmp::Le => CmpOp::Le,
            LoopCmp::Gt => CmpOp::Gt,
            LoopCmp::Ge => CmpOp::Ge,
        };
        self.emit(Inst::Setp { op: cmp, ty: VType::B32, d: p, a: var_reg.into(), b: bound });
        self.emit(Inst::Bra { target: self.exit_label, pred: Some((p, false)) });
        // Register reductions declared on this loop.
        for r in &dir.reductions {
            self.declare_reduction(r)?;
        }
        Ok(())
    }

    fn declare_reduction(&mut self, r: &Reduction) -> Result<(), CodegenError> {
        if self.reductions.contains_key(&r.var) {
            return Ok(());
        }
        // The reduction variable must be a function scalar (its host value
        // seeds the slot) or a local; the accumulator starts at identity.
        let sty = match self.func.param(&r.var) {
            Some(Param::Scalar { ty, .. }) => *ty,
            _ => match self.env.get(&r.var) {
                Some(s) => match s.ty {
                    VType::B32 => ScalarTy::I32,
                    VType::B64 => ScalarTy::I64,
                    VType::F32 => ScalarTy::F32,
                    VType::F64 => ScalarTy::F64,
                    VType::Pred => {
                        return Err(CodegenError::new("cannot reduce a predicate"));
                    }
                },
                None => {
                    return Err(CodegenError::new(format!(
                        "reduction variable `{}` is not declared",
                        r.var
                    )))
                }
            },
        };
        let t = vty(sty);
        let acc = self.vreg(t);
        let identity: Operand = match (r.op, t.is_float()) {
            (ReduceOp::Add, true) => Operand::ImmF(0.0),
            (ReduceOp::Add, false) => Operand::ImmI(0),
            (ReduceOp::Mul, true) => Operand::ImmF(1.0),
            (ReduceOp::Mul, false) => Operand::ImmI(1),
            (ReduceOp::Min, true) => Operand::ImmF(f64::INFINITY),
            (ReduceOp::Max, true) => Operand::ImmF(f64::NEG_INFINITY),
            (ReduceOp::Min, false) => Operand::ImmI(i64::MAX),
            (ReduceOp::Max, false) => Operand::ImmI(i64::MIN),
        };
        self.entry.push(Inst::Mov { ty: t, d: acc, a: identity });
        let ix = self.abi.intern(AbiParam::ReductionSlot { var: r.var.clone(), op: r.op, ty: sty });
        // Shadow the variable with the accumulator.
        self.env.insert(r.var.clone(), Slot { reg: acc, ty: t });
        self.reductions.insert(r.var.clone(), (r.op, Slot { reg: acc, ty: t }, ix));
        Ok(())
    }

    // --------------------------------------------------------- statements

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), CodegenError> {
        match s {
            Stmt::DeclScalar { name, ty, init } => {
                let t = vty(*ty);
                let reg = self.vreg(t);
                if let Some(e) = init {
                    let (v, et) = self.lower_expr(e)?;
                    let v = self.cvt(t, et, v);
                    self.emit(Inst::Mov { ty: t, d: reg, a: v });
                }
                self.env.insert(name.clone(), Slot { reg, ty: t });
                Ok(())
            }
            Stmt::Assign { lhs, op, rhs } => self.lower_assign(lhs, *op, rhs),
            Stmt::For(f) => self.lower_seq_loop(f),
            Stmt::If { cond, then_body, else_body } => {
                let p = self.lower_cond(cond)?;
                let l_else = self.fresh_label();
                let l_end = self.fresh_label();
                self.emit(Inst::Bra { target: l_else, pred: Some((p, false)) });
                self.memo_push();
                for s in then_body {
                    self.lower_stmt(s)?;
                }
                self.memo_pop();
                self.emit(Inst::Bra { target: l_end, pred: None });
                self.emit(Inst::Mark(l_else));
                self.memo_push();
                for s in else_body {
                    self.lower_stmt(s)?;
                }
                self.memo_pop();
                self.emit(Inst::Mark(l_end));
                Ok(())
            }
            Stmt::Block(b) => {
                for s in b {
                    self.lower_stmt(s)?;
                }
                Ok(())
            }
            Stmt::Region(_) => Err(CodegenError::new("offload regions cannot nest")),
        }
    }

    fn lower_assign(&mut self, lhs: &LValue, op: AssignOp, rhs: &Expr) -> Result<(), CodegenError> {
        match lhs {
            LValue::Var(v) => {
                let slot = match self.env.get(v) {
                    Some(s) => *s,
                    None => self.param_slot(v)?,
                };
                let (mut val, vt) = self.lower_expr(rhs)?;
                val = self.cvt(slot.ty, vt, val);
                let out = if let Some(b) = op.bin_op() {
                    self.alu(bin_alu(b), slot.ty, slot.reg.into(), val)
                } else {
                    val
                };
                self.emit(Inst::Mov { ty: slot.ty, d: slot.reg, a: out });
                self.memo_purge(slot.reg);
                Ok(())
            }
            LValue::ArrayRef(a) => {
                let (addr, elem_ty, space) = self.array_access(a)?;
                let (mut val, vt) = self.lower_expr(rhs)?;
                val = self.cvt(elem_ty, vt, val);
                let out = if let Some(b) = op.bin_op() {
                    // Read-modify-write: load current value first. The
                    // load must use the *writable* space (never read-only).
                    let cur = self.vreg(elem_ty);
                    self.emit(Inst::Ld { space: MemSpace::Global, ty: elem_ty, d: cur, addr });
                    self.alu(bin_alu(b), elem_ty, cur.into(), val)
                } else {
                    val
                };
                debug_assert_ne!(space, MemSpace::ReadOnly, "stores never go read-only");
                self.emit(Inst::St { space: MemSpace::Global, ty: elem_ty, addr, a: out });
                Ok(())
            }
        }
    }

    fn lower_seq_loop(&mut self, f: &ForLoop) -> Result<(), CodegenError> {
        // var = lo
        let var_slot = if f.declares_var || !self.env.contains_key(&f.var) {
            let reg = self.vreg(VType::B32);
            let slot = Slot { reg, ty: VType::B32 };
            self.env.insert(f.var.clone(), slot);
            slot
        } else {
            self.env[&f.var]
        };
        for r in f.directive.iter().flat_map(|d| &d.reductions) {
            self.declare_reduction(r)?;
        }
        let (lo, lot) = self.lower_expr(&f.lo)?;
        let lo = self.cvt(var_slot.ty, lot, lo);
        self.emit(Inst::Mov { ty: var_slot.ty, d: var_slot.reg, a: lo });
        self.memo_purge(var_slot.reg);
        let l_top = self.fresh_label();
        let l_end = self.fresh_label();
        self.emit(Inst::Mark(l_top));
        // Condition (re-evaluated every iteration).
        self.memo_push();
        let (bound, bt) = self.lower_expr(&f.bound)?;
        let bound = self.cvt(var_slot.ty, bt, bound);
        let p = self.vreg(VType::Pred);
        let cmp = match f.cmp {
            LoopCmp::Lt => CmpOp::Lt,
            LoopCmp::Le => CmpOp::Le,
            LoopCmp::Gt => CmpOp::Gt,
            LoopCmp::Ge => CmpOp::Ge,
        };
        self.emit(Inst::Setp { op: cmp, ty: var_slot.ty, d: p, a: var_slot.reg.into(), b: bound });
        self.emit(Inst::Bra { target: l_end, pred: Some((p, false)) });
        for s in &f.body {
            self.lower_stmt(s)?;
        }
        // var += step; loop.
        let stepped =
            self.alu(AluOp::Add, var_slot.ty, var_slot.reg.into(), Operand::ImmI(f.step));
        self.emit(Inst::Mov { ty: var_slot.ty, d: var_slot.reg, a: stepped });
        self.memo_pop();
        self.memo_purge(var_slot.reg);
        self.emit(Inst::Bra { target: l_top, pred: None });
        self.emit(Inst::Mark(l_end));
        Ok(())
    }

    // -------------------------------------------------------- expressions

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, VType), CodegenError> {
        match e {
            Expr::IntLit(v) => Ok((Operand::ImmI(*v), VType::B32)),
            Expr::FloatLit(v) => Ok((Operand::ImmF(*v), VType::F64)),
            Expr::Var(v) => {
                let slot = match self.env.get(v) {
                    Some(s) => *s,
                    None => self.param_slot(v)?,
                };
                Ok((slot.reg.into(), slot.ty))
            }
            Expr::ArrayRef(a) => {
                let (addr, elem_ty, space) = self.array_access(a)?;
                let d = self.vreg(elem_ty);
                self.emit(Inst::Ld { space, ty: elem_ty, d, addr });
                Ok((d.into(), elem_ty))
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let (v, t) = self.lower_expr(inner)?;
                if let Operand::ImmI(x) = v {
                    return Ok((Operand::ImmI(-x), t));
                }
                if let Operand::ImmF(x) = v {
                    return Ok((Operand::ImmF(-x), t));
                }
                let d = self.vreg(t);
                self.emit(Inst::Neg { ty: t, d, a: v });
                Ok((d.into(), t))
            }
            Expr::Unary(UnOp::Not, _) | Expr::Binary(BinOp::And, ..) | Expr::Binary(BinOp::Or, ..) => {
                let p = self.lower_cond(e)?;
                let v = self.cvt(VType::B32, VType::Pred, p.into());
                Ok((v, VType::B32))
            }
            Expr::Binary(op, l, r) if op.is_relational() => {
                let p = self.lower_cmp(*op, l, r)?;
                let v = self.cvt(VType::B32, VType::Pred, p.into());
                Ok((v, VType::B32))
            }
            Expr::Binary(op, l, r) => {
                let (lv, lt) = self.lower_expr(l)?;
                let (rv, rt) = self.lower_expr(r)?;
                let t = unify_vty(lt, rt);
                let lv = self.cvt(t, lt, lv);
                let rv = self.cvt(t, rt, rv);
                Ok((self.alu(bin_alu(*op), t, lv, rv), t))
            }
            Expr::Call(intr, args) => self.lower_call(*intr, args),
            Expr::Cast(ty, inner) => {
                let (v, t) = self.lower_expr(inner)?;
                let dt = vty(*ty);
                Ok((self.cvt(dt, t, v), dt))
            }
        }
    }

    fn lower_call(
        &mut self,
        intr: Intrinsic,
        args: &[Expr],
    ) -> Result<(Operand, VType), CodegenError> {
        let lowered: Vec<(Operand, VType)> =
            args.iter().map(|a| self.lower_expr(a)).collect::<Result<_, _>>()?;
        let all_int = lowered.iter().all(|(_, t)| !t.is_float());
        match intr {
            Intrinsic::Min | Intrinsic::Max => {
                let t = if all_int {
                    unify_vty(lowered[0].1, lowered[1].1)
                } else {
                    unify_vty(
                        float_of(lowered[0].1),
                        float_of(lowered[1].1),
                    )
                };
                let a = self.cvt(t, lowered[0].1, lowered[0].0);
                let b = self.cvt(t, lowered[1].1, lowered[1].0);
                let op = if intr == Intrinsic::Min { AluOp::Min } else { AluOp::Max };
                Ok((self.alu(op, t, a, b), t))
            }
            Intrinsic::Abs if all_int => {
                let (v, t) = lowered[0];
                let n = self.vreg(t);
                self.emit(Inst::Neg { ty: t, d: n, a: v });
                Ok((self.alu(AluOp::Max, t, v, n.into()), t))
            }
            _ => {
                // Float SFU path; default precision is f64 unless all
                // arguments are f32.
                let t = if lowered.iter().all(|(_, t)| *t == VType::F32) {
                    VType::F32
                } else {
                    VType::F64
                };
                let a = self.cvt(t, lowered[0].1, lowered[0].0);
                let b = if lowered.len() > 1 {
                    Some(self.cvt(t, lowered[1].1, lowered[1].0))
                } else {
                    None
                };
                let op = match intr {
                    Intrinsic::Sqrt => MathOp::Sqrt,
                    Intrinsic::Exp => MathOp::Exp,
                    Intrinsic::Log => MathOp::Log,
                    Intrinsic::Sin => MathOp::Sin,
                    Intrinsic::Cos => MathOp::Cos,
                    Intrinsic::Abs => MathOp::Abs,
                    Intrinsic::Floor => MathOp::Floor,
                    Intrinsic::Pow => MathOp::Pow,
                    Intrinsic::Min | Intrinsic::Max => unreachable!("handled above"),
                };
                let d = self.vreg(t);
                self.emit(Inst::Math { op, ty: t, d, a, b });
                Ok((d.into(), t))
            }
        }
    }

    /// Lower a condition into a predicate register.
    fn lower_cond(&mut self, e: &Expr) -> Result<VReg, CodegenError> {
        match e {
            Expr::Binary(op, l, r) if matches!(op, BinOp::And | BinOp::Or) => {
                let a = self.lower_cond(l)?;
                let b = self.lower_cond(r)?;
                let d = self.vreg(VType::Pred);
                let alu_op = if *op == BinOp::And { AluOp::And } else { AluOp::Or };
                self.emit(Inst::Alu { op: alu_op, ty: VType::Pred, d, a: a.into(), b: b.into() });
                Ok(d)
            }
            Expr::Unary(UnOp::Not, inner) => {
                let p = self.lower_cond(inner)?;
                let d = self.vreg(VType::Pred);
                self.emit(Inst::Not { d, a: p });
                Ok(d)
            }
            Expr::Binary(op, l, r) if op.is_relational() => self.lower_cmp(*op, l, r),
            other => {
                // Truthiness of a numeric value: v != 0.
                let (v, t) = self.lower_expr(other)?;
                let d = self.vreg(VType::Pred);
                let zero = if t.is_float() { Operand::ImmF(0.0) } else { Operand::ImmI(0) };
                self.emit(Inst::Setp { op: CmpOp::Ne, ty: t, d, a: v, b: zero });
                Ok(d)
            }
        }
    }

    fn lower_cmp(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Result<VReg, CodegenError> {
        let (lv, lt) = self.lower_expr(l)?;
        let (rv, rt) = self.lower_expr(r)?;
        let t = unify_vty(lt, rt);
        let lv = self.cvt(t, lt, lv);
        let rv = self.cvt(t, rt, rv);
        let cmp = match op {
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            _ => return Err(CodegenError::new("not a comparison")),
        };
        let d = self.vreg(VType::Pred);
        self.emit(Inst::Setp { op: cmp, ty: t, d, a: lv, b: rv });
        Ok(d)
    }

    // ------------------------------------------------------ array access

    /// Compute the element address of an array reference; returns
    /// (address register, element VIR type, load memory space).
    fn array_access(&mut self, a: &ArrayRef) -> Result<(VReg, VType, MemSpace), CodegenError> {
        let (aty, _is_const) = match self.func.param(&a.array) {
            Some(Param::Array { ty, is_const, .. }) => (ty.clone(), *is_const),
            _ => {
                return Err(CodegenError::new(format!(
                    "`{}` is not an array parameter",
                    a.array
                )))
            }
        };
        if a.indices.len() != aty.rank() {
            return Err(CodegenError::new(format!(
                "array `{}` rank mismatch in codegen",
                a.array
            )));
        }
        let elem_ty = vty(aty.elem);
        let space = match self.usage.get(&a.array).map(|u| u.space) {
            Some(ArraySpace::ReadOnly) if self.opts.use_readonly_cache => MemSpace::ReadOnly,
            _ => MemSpace::Global,
        };

        // Decide the offset arithmetic width (§IV-B): 32-bit when the
        // `small` clause covers the array (and is honored), or when the
        // array is fully static and provably < 2 GiB.
        let statically_small = aty
            .static_len()
            .map(|n| n.checked_mul(aty.elem.size_bytes() as i64).is_some_and(|b| b < (1 << 31)))
            .unwrap_or(false);
        let small = statically_small
            || (self.opts.honor_small && self.clauses.is_small(&a.array));
        let off_ty = if small { VType::B32 } else { VType::B64 };

        // Dope source: a dim group (owned bounds or shared dope) or the
        // array itself.
        let group = if self.opts.honor_dim {
            self.clauses.dim_group_of(&a.array).map(|(ix, g)| (ix, g.clone()))
        } else {
            None
        };

        // offset = ((i0' * e1 + i1') * e2 + i2') ... — the row-major
        // Horner fold, shared with the saturation phase's factoring rule
        // via `safara_ir::offset::row_major_offset`.
        let elems = {
            let mut alg = EmitterOffset {
                em: self,
                indices: &a.indices,
                aty: &aty,
                group: group.as_ref(),
                array: &a.array,
                off_ty,
            };
            row_major_offset(a.indices.len(), &mut alg)?
        };
        let bytes = self.alu(
            AluOp::Mul,
            off_ty,
            elems,
            Operand::ImmI(aty.elem.size_bytes() as i64),
        );
        let bytes64 = self.cvt(VType::B64, off_ty, bytes);
        let base = self.base_of(&a.array);
        let addr_op = self.alu(AluOp::Add, VType::B64, base.into(), bytes64);
        let addr = match addr_op {
            Operand::Reg(r) => r,
            imm => {
                let d = self.vreg(VType::B64);
                self.emit(Inst::Mov { ty: VType::B64, d, a: imm });
                d
            }
        };
        Ok((addr, elem_ty, space))
    }

    /// The lower bound of dimension `d` as an operand in the offset type,
    /// or `None` if it is statically zero.
    fn dim_lower(
        &mut self,
        aty: &ArrayTy,
        group: Option<&(usize, DimGroup)>,
        array: &Ident,
        d: usize,
    ) -> Result<Option<Operand>, CodegenError> {
        // Group bounds given explicitly in the clause win.
        if let Some((_, g)) = group {
            if let Some(bounds) = &g.bounds {
                let lb = &bounds[d].lower;
                if lb.as_const() == Some(0) {
                    return Ok(None);
                }
                let (v, t) = self.lower_expr(lb)?;
                return Ok(Some(self.cvt(VType::B32, t, v)));
            }
        }
        let dim = &aty.dims[d];
        match &dim.lower {
            None => Ok(None),
            Some(e) if e.as_const() == Some(0) => Ok(None),
            Some(e) => {
                if let Some(c) = e.as_const() {
                    return Ok(Some(Operand::ImmI(c)));
                }
                // Runtime lower bound: a dope scalar.
                let owner = match group {
                    Some((gi, _)) => DimOwner::Group(*gi),
                    None => DimOwner::Array(array.clone()),
                };
                Ok(Some(self.dope_value(&owner, d, true).into()))
            }
        }
    }

    /// The extent of dimension `d` as an operand in the offset type.
    fn dim_extent(
        &mut self,
        aty: &ArrayTy,
        group: Option<&(usize, DimGroup)>,
        array: &Ident,
        d: usize,
    ) -> Result<Operand, CodegenError> {
        if let Some((_, g)) = group {
            if let Some(bounds) = &g.bounds {
                let len = &bounds[d].len;
                if let Some(c) = len.as_const() {
                    return Ok(Operand::ImmI(c));
                }
                let (v, t) = self.lower_expr(len)?;
                return Ok(self.cvt(VType::B32, t, v));
            }
        }
        match &aty.dims[d].extent {
            Extent::Const(c) => Ok(Operand::ImmI(*c)),
            Extent::Dynamic(e) => {
                if let Some(c) = e.as_const() {
                    return Ok(Operand::ImmI(c));
                }
                let owner = match group {
                    Some((gi, _)) => DimOwner::Group(*gi),
                    None => DimOwner::Array(array.clone()),
                };
                Ok(self.dope_value(&owner, d, false).into())
            }
        }
    }
}

/// The code generator's value algebra for the shared row-major offset
/// fold: indices lower through the emitter (with conversion to the
/// decided offset width), bounds and extents come from the dope logic,
/// and combining steps emit value-numbered ALU ops.
struct EmitterOffset<'e, 'a> {
    em: &'e mut Emitter<'a>,
    indices: &'e [Expr],
    aty: &'e ArrayTy,
    group: Option<&'e (usize, DimGroup)>,
    array: &'e Ident,
    off_ty: VType,
}

impl OffsetAlgebra for EmitterOffset<'_, '_> {
    type V = Operand;
    type E = CodegenError;

    fn index(&mut self, d: usize) -> Result<Operand, CodegenError> {
        let (v, t) = self.em.lower_expr(&self.indices[d])?;
        Ok(self.em.cvt(self.off_ty, t, v))
    }

    fn lower(&mut self, d: usize) -> Result<Option<Operand>, CodegenError> {
        self.em.dim_lower(self.aty, self.group, self.array, d)
    }

    fn extent(&mut self, d: usize) -> Result<Operand, CodegenError> {
        self.em.dim_extent(self.aty, self.group, self.array, d)
    }

    fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.em.alu(AluOp::Sub, self.off_ty, a, b)
    }

    fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.em.alu(AluOp::Mul, self.off_ty, a, b)
    }

    fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.em.alu(AluOp::Add, self.off_ty, a, b)
    }
}

fn bin_alu(op: BinOp) -> AluOp {
    match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::Shl => AluOp::Shl,
        _ => unreachable!("relational ops handled separately"),
    }
}

fn unify_vty(a: VType, b: VType) -> VType {
    use VType::*;
    match (a, b) {
        (F64, _) | (_, F64) => F64,
        (F32, B64) | (B64, F32) => F64,
        (F32, _) | (_, F32) => F32,
        (B64, _) | (_, B64) => B64,
        _ => B32,
    }
}

fn float_of(t: VType) -> VType {
    match t {
        VType::F32 => VType::F32,
        VType::B64 | VType::F64 => VType::F64,
        _ => VType::F32,
    }
}

fn ty_code(t: VType) -> u8 {
    match t {
        VType::B32 => 0,
        VType::B64 => 1,
        VType::F32 => 2,
        VType::F64 => 3,
        VType::Pred => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_ir::parse_program;

    fn compile(src: &str, opts: &CodegenOptions) -> Vec<CompiledKernel> {
        let p = parse_program(src).unwrap();
        lower_function(&p.functions[0], opts).unwrap()
    }

    const AXPY: &str = r#"
    void axpy(int n, float alpha, const float x[n], float y[n]) {
      #pragma acc kernels copyin(x) copy(y)
      {
        #pragma acc loop gang vector
        for (int i = 0; i < n; i++) {
          y[i] = y[i] + alpha * x[i];
        }
      }
    }"#;

    #[test]
    fn axpy_lowers_to_one_kernel() {
        let ks = compile(AXPY, &CodegenOptions::default());
        assert_eq!(ks.len(), 1);
        let k = &ks[0];
        assert_eq!(k.name, "axpy_k0");
        assert_eq!(k.mapped.len(), 1);
        assert_eq!(k.mapped[0].var.as_str(), "i");
        // Read-only x loads via the read-only path; y via global.
        let spaces: Vec<MemSpace> = k
            .vir
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Ld { space, .. } => Some(*space),
                _ => None,
            })
            .collect();
        assert!(spaces.contains(&MemSpace::ReadOnly), "{:?}", k.vir.disassemble());
        assert!(spaces.contains(&MemSpace::Global));
    }

    #[test]
    fn readonly_disabled_uses_global() {
        let opts = CodegenOptions { use_readonly_cache: false, ..Default::default() };
        let ks = compile(AXPY, &opts);
        assert!(ks[0]
            .vir
            .insts
            .iter()
            .all(|i| !matches!(i, Inst::Ld { space: MemSpace::ReadOnly, .. })));
    }

    #[test]
    fn multiple_nests_become_multiple_kernels() {
        let src = r#"
        void two(int n, float a[n], float b[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) { a[i] = 1.0; }
            #pragma acc loop gang vector
            for (int j = 0; j < n; j++) { b[j] = 2.0; }
          }
        }"#;
        let ks = compile(src, &CodegenOptions::default());
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[1].name, "two_k1");
    }

    fn count_int64_alu(k: &CompiledKernel) -> usize {
        k.vir
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Alu { ty: VType::B64, .. }))
            .count()
    }

    const SMALL3D: &str = r#"
    void wave(int nx, int ny, int nz, float h,
              const float vz_1[nz][ny][nx], const float vz_2[nz][ny][nx],
              const float vz_3[nz][ny][nx], float out[nz][ny][nx]) {
      #pragma acc kernels small(vz_1, vz_2, vz_3, out) dim((vz_1, vz_2, vz_3, out))
      {
        #pragma acc loop gang
        for (int j = 1; j < ny; j++) {
          #pragma acc loop vector
          for (int i = 1; i < nx; i++) {
            #pragma acc loop seq
            for (int k = 1; k < nz; k++) {
              out[k][j][i] = (vz_1[k][j][i] - vz_1[k - 1][j][i]) / h
                           + (vz_2[k][j][i] - vz_2[k - 1][j][i]) / h
                           + (vz_3[k][j][i] - vz_3[k - 1][j][i]) / h;
            }
          }
        }
      }
    }"#;

    #[test]
    fn small_clause_narrows_offset_arithmetic() {
        let with = compile(SMALL3D, &CodegenOptions::default());
        let without = compile(SMALL3D, &CodegenOptions::base());
        let n_with = count_int64_alu(&with[0]);
        let n_without = count_int64_alu(&without[0]);
        assert!(
            n_with < n_without,
            "small should reduce 64-bit ALU ops: {n_with} vs {n_without}"
        );
    }

    #[test]
    fn dim_clause_reduces_param_count_and_instructions() {
        let with = compile(SMALL3D, &CodegenOptions::default());
        let no_dim = CodegenOptions { honor_dim: false, ..Default::default() };
        let without = compile(SMALL3D, &no_dim);
        // Shared dope params: the grouped arrays contribute one extent set.
        let dope_params = |k: &CompiledKernel| {
            k.abi
                .params
                .iter()
                .filter(|p| matches!(p, AbiParam::DimExtent { .. } | AbiParam::DimLower { .. }))
                .count()
        };
        assert!(
            dope_params(&with[0]) < dope_params(&without[0]),
            "dim must shrink the dope parameter list: {} vs {}",
            dope_params(&with[0]),
            dope_params(&without[0])
        );
        assert!(
            with[0].vir.insts.len() < without[0].vir.insts.len(),
            "shared offsets should shrink the kernel: {} vs {}",
            with[0].vir.insts.len(),
            without[0].vir.insts.len()
        );
    }

    #[test]
    fn cse_collapses_repeated_loads_of_dope() {
        // Without CSE the same offset math is emitted per reference.
        let no_cse = CodegenOptions { local_cse: false, ..Default::default() };
        let with = compile(SMALL3D, &CodegenOptions::default());
        let without = compile(SMALL3D, &no_cse);
        assert!(with[0].vir.insts.len() < without[0].vir.insts.len());
    }

    #[test]
    fn two_dim_mapping_produces_two_mapped_loops() {
        let ks = compile(SMALL3D, &CodegenOptions::default());
        let k = &ks[0];
        assert_eq!(k.mapped.len(), 2);
        assert_eq!(k.mapped[0].var.as_str(), "i"); // x
        assert_eq!(k.mapped[1].var.as_str(), "j"); // y
    }

    #[test]
    fn reduction_emits_atomic() {
        let src = r#"
        void dotp(int n, const float x[n], const float y[n], float s) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < n; i++) {
              s += x[i] * y[i];
            }
          }
        }"#;
        let ks = compile(src, &CodegenOptions::default());
        let k = &ks[0];
        assert!(k.vir.insts.iter().any(|i| matches!(i, Inst::AtomAdd { .. })));
        assert!(k
            .abi
            .params
            .iter()
            .any(|p| matches!(p, AbiParam::ReductionSlot { .. })));
    }

    #[test]
    fn statements_mixed_with_inner_parallel_loop_rejected() {
        let src = r#"
        void bad(int n, float a[n][n], float c[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang
            for (int j = 0; j < n; j++) {
              c[j] = 0.0;
              #pragma acc loop vector
              for (int i = 0; i < n; i++) { a[j][i] = 1.0; }
            }
          }
        }"#;
        let p = parse_program(src).unwrap();
        let err = lower_function(&p.functions[0], &CodegenOptions::default()).unwrap_err();
        assert!(err.message.contains("mixes statements"), "{err}");
    }

    #[test]
    fn mul_reduction_rejected() {
        let src = r#"
        void prod(int n, const float x[n], float s) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector reduction(*:s)
            for (int i = 0; i < n; i++) { s *= x[i]; }
          }
        }"#;
        let p = parse_program(src).unwrap();
        let err = lower_function(&p.functions[0], &CodegenOptions::default()).unwrap_err();
        assert!(err.message.contains("reductions"), "{err}");
    }

    #[test]
    fn static_array_offsets_use_32bit_without_small() {
        let src = r#"
        void stat(const float x[64][64], float y[64][64]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < 64; i++) {
              y[i][0] = x[i][0];
            }
          }
        }"#;
        let ks = compile(src, &CodegenOptions::base());
        // Static 16 KiB arrays: even "base" codegen knows 32-bit offsets
        // suffice (the paper: "when the array is a static array ... the
        // compiler can detect the array size").
        assert_eq!(count_int64_alu(&ks[0]), 2, "{}", ks[0].vir.disassemble());
        // (one b64 base+offset add per array is unavoidable; all the
        // subscript arithmetic itself stays 32-bit)
    }
}
