//! Liveness-based dead-code elimination on VIR.
//!
//! An instruction is live if it has a side effect (store, atomic, branch,
//! label, return) or defines a register some live instruction reads.
//! Everything else — including loads whose results are never used and
//! `ld.param` of dope scalars a clause made redundant — is removed. This
//! is the pass that turns the `dim`/`small` clauses' *source-level*
//! savings into *register-level* savings the PTXAS-sim can observe.

use safara_gpusim::vir::{Inst, KernelVir};

/// Remove dead instructions in place. Returns the number removed.
pub fn eliminate_dead_code(kernel: &mut KernelVir) -> usize {
    let nv = kernel.vregs.len();
    let mut needed = vec![false; nv];

    // Seed: uses of side-effecting instructions.
    let side_effect = |i: &Inst| {
        matches!(
            i,
            Inst::St { .. } | Inst::AtomAdd { .. } | Inst::Bra { .. } | Inst::Mark(_) | Inst::Ret
        )
    };
    let mut changed = true;
    while changed {
        changed = false;
        for inst in &kernel.insts {
            let live = side_effect(inst)
                || inst.def().map(|d| needed[d.0 as usize]).unwrap_or(false);
            if live {
                for u in inst.uses() {
                    if !needed[u.0 as usize] {
                        needed[u.0 as usize] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    let before = kernel.insts.len();
    kernel.insts.retain(|inst| {
        side_effect(inst) || inst.def().map(|d| needed[d.0 as usize]).unwrap_or(false)
    });
    before - kernel.insts.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_gpusim::vir::*;

    #[test]
    fn unused_computation_removed() {
        let mut k = KernelVir { name: "t".into(), params: vec![ParamDecl::Ptr], ..Default::default() };
        let base = k.new_vreg(VType::B64);
        let dead = k.new_vreg(VType::B32);
        let dead2 = k.new_vreg(VType::B32);
        k.insts = vec![
            Inst::LdParam { ty: VType::B64, d: base, index: 0 },
            Inst::Mov { ty: VType::B32, d: dead, a: Operand::ImmI(1) },
            Inst::Alu { op: AluOp::Add, ty: VType::B32, d: dead2, a: dead.into(), b: Operand::ImmI(2) },
            Inst::St { space: MemSpace::Global, ty: VType::B32, addr: base, a: Operand::ImmI(7) },
            Inst::Ret,
        ];
        let removed = eliminate_dead_code(&mut k);
        assert_eq!(removed, 2);
        assert_eq!(k.insts.len(), 3);
    }

    #[test]
    fn live_chain_kept() {
        let mut k = KernelVir { name: "t".into(), params: vec![ParamDecl::Ptr], ..Default::default() };
        let base = k.new_vreg(VType::B64);
        let a = k.new_vreg(VType::B32);
        let b = k.new_vreg(VType::B32);
        k.insts = vec![
            Inst::LdParam { ty: VType::B64, d: base, index: 0 },
            Inst::Mov { ty: VType::B32, d: a, a: Operand::ImmI(1) },
            Inst::Alu { op: AluOp::Add, ty: VType::B32, d: b, a: a.into(), b: Operand::ImmI(2) },
            Inst::St { space: MemSpace::Global, ty: VType::B32, addr: base, a: b.into() },
            Inst::Ret,
        ];
        assert_eq!(eliminate_dead_code(&mut k), 0);
        assert_eq!(k.insts.len(), 5);
    }

    #[test]
    fn dead_load_removed() {
        let mut k = KernelVir { name: "t".into(), params: vec![ParamDecl::Ptr], ..Default::default() };
        let base = k.new_vreg(VType::B64);
        let v = k.new_vreg(VType::F32);
        k.insts = vec![
            Inst::LdParam { ty: VType::B64, d: base, index: 0 },
            Inst::Ld { space: MemSpace::Global, ty: VType::F32, d: v, addr: base },
            Inst::Ret,
        ];
        let removed = eliminate_dead_code(&mut k);
        // Both the load and the now-unused base param load go away.
        assert_eq!(removed, 2);
        assert_eq!(k.insts.len(), 1);
    }

    #[test]
    fn branch_predicates_stay_live() {
        let mut k = KernelVir { name: "t".into(), ..Default::default() };
        let x = k.new_vreg(VType::B32);
        let p = k.new_vreg(VType::Pred);
        k.insts = vec![
            Inst::Mov { ty: VType::B32, d: x, a: Operand::ImmI(1) },
            Inst::Setp { op: CmpOp::Lt, ty: VType::B32, d: p, a: x.into(), b: Operand::ImmI(2) },
            Inst::Mark(Label(0)),
            Inst::Bra { target: Label(0), pred: Some((p, false)) },
            Inst::Ret,
        ];
        assert_eq!(eliminate_dead_code(&mut k), 0);
    }
}
