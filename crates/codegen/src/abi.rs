//! Kernel parameter ABI: how the runtime marshals host values into the
//! launch parameter list.
//!
//! The layout is decided by the code generator and read by the runtime:
//!
//! * one entry per *used* function scalar,
//! * one base-pointer entry per *used* array,
//! * one `i32` extent entry per dynamic dimension the subscript lowering
//!   needs (dimensions `1..rank` — the outermost extent never appears in
//!   a row-major offset), plus one `i32` lower-bound entry per dimension
//!   with a non-zero/unknown lower bound,
//! * with `dim` groups, dope entries are owned by the **group** rather
//!   than each member array — this is precisely how the clause removes
//!   scalars,
//! * one trailing pointer per reduction (a one-element buffer the kernel
//!   atomically combines into).

use safara_ir::{Ident, ReduceOp, ScalarTy};

/// Who owns a dope (dimension-info) parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimOwner {
    /// An individual array's dope vector.
    Array(Ident),
    /// A `dim` group's shared dope vector (index into the region's group
    /// list); values are taken from the group bounds or the first member.
    Group(usize),
}

/// One kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum AbiParam {
    /// A function scalar passed by value.
    Scalar {
        /// Source-level name.
        name: Ident,
        /// Value type.
        ty: ScalarTy,
    },
    /// An array base pointer.
    ArrayBase {
        /// The array's name.
        array: Ident,
    },
    /// The extent of dimension `dim` of `owner`, as `i32`.
    DimExtent {
        /// Owning array or group.
        owner: DimOwner,
        /// Dimension index (0 = outermost).
        dim: usize,
    },
    /// The lower bound of dimension `dim` of `owner`, as `i32`.
    DimLower {
        /// Owning array or group.
        owner: DimOwner,
        /// Dimension index (0 = outermost).
        dim: usize,
    },
    /// Pointer to a one-element reduction buffer.
    ReductionSlot {
        /// The reduced scalar's name.
        var: Ident,
        /// Reduction operator.
        op: ReduceOp,
        /// Element type.
        ty: ScalarTy,
    },
}

/// A kernel's parameter list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelAbi {
    /// Parameters in passing order.
    pub params: Vec<AbiParam>,
}

impl KernelAbi {
    /// Index of an existing parameter equal to `p`, or append it.
    pub fn intern(&mut self, p: AbiParam) -> u32 {
        if let Some(ix) = self.params.iter().position(|q| *q == p) {
            return ix as u32;
        }
        self.params.push(p);
        (self.params.len() - 1) as u32
    }

    /// The reduction slots, in order.
    pub fn reductions(&self) -> impl Iterator<Item = (&Ident, ReduceOp, ScalarTy)> {
        self.params.iter().filter_map(|p| match p {
            AbiParam::ReductionSlot { var, op, ty } => Some((var, *op, *ty)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let mut abi = KernelAbi::default();
        let a = abi.intern(AbiParam::Scalar { name: Ident::new("n"), ty: ScalarTy::I32 });
        let b = abi.intern(AbiParam::ArrayBase { array: Ident::new("x") });
        let a2 = abi.intern(AbiParam::Scalar { name: Ident::new("n"), ty: ScalarTy::I32 });
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(abi.params.len(), 2);
    }

    #[test]
    fn group_owned_dims_are_distinct_from_array_owned() {
        let mut abi = KernelAbi::default();
        let g = abi.intern(AbiParam::DimExtent { owner: DimOwner::Group(0), dim: 1 });
        let a = abi.intern(AbiParam::DimExtent {
            owner: DimOwner::Array(Ident::new("vz_1")),
            dim: 1,
        });
        assert_ne!(g, a);
        // A second array in the same group reuses the group entry.
        let g2 = abi.intern(AbiParam::DimExtent { owner: DimOwner::Group(0), dim: 1 });
        assert_eq!(g, g2);
    }

    #[test]
    fn reduction_iteration() {
        let mut abi = KernelAbi::default();
        abi.intern(AbiParam::ReductionSlot {
            var: Ident::new("s"),
            op: ReduceOp::Add,
            ty: ScalarTy::F64,
        });
        let reds: Vec<_> = abi.reductions().collect();
        assert_eq!(reds.len(), 1);
        assert_eq!(reds[0].0.as_str(), "s");
    }
}
