//! Static memory-coalescing classification.
//!
//! On NVIDIA hardware a warp's 32 lanes differ (first) in `threadIdx.x`.
//! A global access is *coalesced* when consecutive lanes touch consecutive
//! addresses, which for a row-major array `a[..][..][last]` means:
//!
//! * the **last** subscript depends on the x-mapped loop variable with
//!   coefficient ±1, and
//! * no **other** subscript depends on the x variable.
//!
//! If the x variable appears with a non-unit stride in the last dimension,
//! or in any non-last dimension, lanes are strided across memory and each
//! lane needs its own transaction — *uncoalesced*. If the x variable
//! appears in no subscript, all lanes read the same address — *broadcast*
//! (one transaction serves the warp). This mirrors the analysis the paper
//! adopts from Jang et al. (§III-B.1) and drives the SAFARA cost model:
//! uncoalesced references are the most profitable to scalar-replace.

use crate::affine::affine_of;
use crate::region::{RegionInfo, ThreadDim};
use safara_ir::ArrayRef;

/// Coalescing class of one array reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoalesceClass {
    /// Consecutive lanes → consecutive elements: one (or a few) 128-byte
    /// transactions per warp.
    Coalesced,
    /// Lanes scatter: up to 32 transactions per warp access.
    Uncoalesced,
    /// All lanes read the same address (x-variable-free subscripts).
    Broadcast,
    /// Subscripts too complex to analyze; treated as uncoalesced by the
    /// cost model (conservative for profitability ranking).
    Unknown,
}

impl CoalesceClass {
    /// Conservative transactions-per-warp-access estimate used by cost
    /// models (a 32-lane warp, 4-byte elements, 128-byte transactions).
    pub fn est_transactions(self) -> u32 {
        match self {
            CoalesceClass::Coalesced => 1,
            CoalesceClass::Broadcast => 1,
            CoalesceClass::Uncoalesced | CoalesceClass::Unknown => 32,
        }
    }
}

/// Classify `r` given the region structure (which loop variable maps to
/// the x thread dimension).
pub fn classify_ref(r: &ArrayRef, region: &RegionInfo) -> CoalesceClass {
    let xvar = match region.var_for_dim(ThreadDim::X) {
        Some(v) => v.clone(),
        // No parallel loop at all: a degenerate region; treat accesses as
        // broadcast since every "thread" is the single sequential thread.
        None => return CoalesceClass::Broadcast,
    };
    let n = r.indices.len();
    let mut x_in_last = 0i64;
    let mut x_elsewhere = false;
    for (k, ix) in r.indices.iter().enumerate() {
        let f = affine_of(ix);
        if f.nonaffine {
            return CoalesceClass::Unknown;
        }
        let c = f.coeff(&xvar);
        if k + 1 == n {
            x_in_last = c;
        } else if c != 0 {
            x_elsewhere = true;
        }
    }
    if x_elsewhere {
        return CoalesceClass::Uncoalesced;
    }
    match x_in_last {
        0 => CoalesceClass::Broadcast,
        1 | -1 => CoalesceClass::Coalesced,
        _ => CoalesceClass::Uncoalesced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionInfo;
    use safara_ir::parse_program;

    /// Parse a function with one region; return (region info, array refs
    /// found in the region, in textual order, reads only).
    fn setup(src: &str) -> (RegionInfo, Vec<ArrayRef>) {
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        let regions = f.regions();
        let region = regions[0];
        let info = RegionInfo::analyze(region);
        let refs = safara_ir::visit::collect_array_refs(&region.body)
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        (info, refs)
    }

    #[test]
    fn paper_fig5_classification() {
        // Fig. 5: j is the parallel (x) loop; a[i][j] is coalesced (j is
        // the last subscript), b[j][i] is uncoalesced (j in a non-last
        // dimension drives the stride).
        let src = r#"
        void f(int n, float a[n][n], float b[n][n], float c[n], float d[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int j = 1; j < n; j++) {
              c[j] = b[j][0] + b[j][1];
              d[j] = c[j] * b[j][0];
              #pragma acc loop seq
              for (int i = 1; i < n - 1; i++) {
                a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
              }
            }
          }
        }"#;
        let (info, refs) = setup(src);
        let class_of = |name: &str, pick: usize| {
            let r = refs.iter().filter(|r| r.array.as_str() == name).nth(pick).unwrap();
            classify_ref(r, &info)
        };
        // a[i][j]: last subscript is j with coeff 1 → coalesced.
        assert_eq!(class_of("a", 0), CoalesceClass::Coalesced);
        // b[j][i-1]: j in the first dim → uncoalesced.
        let b_inner = refs
            .iter()
            .find(|r| {
                r.array.as_str() == "b" && affine_of(&r.indices[1]).coeff(&"i".into()) != 0
            })
            .unwrap();
        assert_eq!(classify_ref(b_inner, &info), CoalesceClass::Uncoalesced);
        // c[j] (1-D, last = j) → coalesced.
        assert_eq!(class_of("c", 0), CoalesceClass::Coalesced);
    }

    #[test]
    fn broadcast_when_x_free() {
        let src = r#"
        void f(int n, float a[n], float b[n][n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              a[i] = b[0][3] + b[n - 1][0];
            }
          }
        }"#;
        let (info, refs) = setup(src);
        for r in refs.iter().filter(|r| r.array.as_str() == "b") {
            assert_eq!(classify_ref(r, &info), CoalesceClass::Broadcast);
        }
    }

    #[test]
    fn strided_access_uncoalesced() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n / 2; i++) {
              a[2 * i] = 1.0;
            }
          }
        }"#;
        let (info, refs) = setup(src);
        assert_eq!(classify_ref(&refs[0], &info), CoalesceClass::Uncoalesced);
    }

    #[test]
    fn reverse_unit_stride_still_coalesced() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              a[n - 1 - i] = 1.0;
            }
          }
        }"#;
        let (info, refs) = setup(src);
        assert_eq!(classify_ref(&refs[0], &info), CoalesceClass::Coalesced);
    }

    #[test]
    fn two_dim_mapping_uses_inner_loop_as_x() {
        // j → y, i → x; a[j][i] coalesced, a[i][j] uncoalesced.
        let src = r#"
        void f(int n, float a[n][n], float b[n][n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang
            for (int j = 0; j < n; j++) {
              #pragma acc loop vector
              for (int i = 0; i < n; i++) {
                a[j][i] = b[i][j];
              }
            }
          }
        }"#;
        let (info, refs) = setup(src);
        let a = refs.iter().find(|r| r.array.as_str() == "a").unwrap();
        let b = refs.iter().find(|r| r.array.as_str() == "b").unwrap();
        assert_eq!(classify_ref(a, &info), CoalesceClass::Coalesced);
        assert_eq!(classify_ref(b, &info), CoalesceClass::Uncoalesced);
    }

    #[test]
    fn nonaffine_subscript_unknown() {
        let src = r#"
        void f(int n, float a[n], int idx[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              a[idx[i]] = 1.0;
            }
          }
        }"#;
        let (info, refs) = setup(src);
        let gather = refs.iter().find(|r| matches!(r.indices[0], safara_ir::Expr::ArrayRef(_))).unwrap();
        assert_eq!(classify_ref(gather, &info), CoalesceClass::Unknown);
        assert_eq!(CoalesceClass::Unknown.est_transactions(), 32);
    }
}
