//! Affine-form extraction for subscript expressions.
//!
//! A subscript expression such as `2*i + j - 1` is represented as a map
//! from variable names to integer coefficients plus a constant term.
//! Expressions that are not affine (e.g. `i*j`, `a[i]`, float-typed terms)
//! are flagged; dependence and coalescing analyses then treat them
//! conservatively.

use safara_ir::{BinOp, Expr, Ident, UnOp};
use std::collections::BTreeMap;

/// An affine expression `Σ coeff(v)·v + konst`, or "not affine".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineExpr {
    /// Per-variable coefficients (zero coefficients are never stored).
    pub terms: BTreeMap<Ident, i64>,
    /// Constant term.
    pub konst: i64,
    /// Set when the expression could not be put into affine form.
    pub nonaffine: bool,
}

impl AffineExpr {
    /// The affine constant `k`.
    pub fn constant(k: i64) -> Self {
        AffineExpr { konst: k, ..Default::default() }
    }

    /// The affine variable `v`.
    pub fn variable(v: Ident) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        AffineExpr { terms, ..Default::default() }
    }

    /// A marker for a non-affine expression.
    pub fn bottom() -> Self {
        AffineExpr { nonaffine: true, ..Default::default() }
    }

    /// Coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: &Ident) -> i64 {
        self.terms.get(v).copied().unwrap_or(0)
    }

    /// True if the expression does not mention `v` (and is affine).
    pub fn is_free_of(&self, v: &Ident) -> bool {
        !self.nonaffine && self.coeff(v) == 0
    }

    /// True if the expression mentions none of `vars`.
    pub fn is_free_of_all<'a>(&self, vars: impl IntoIterator<Item = &'a Ident>) -> bool {
        !self.nonaffine && vars.into_iter().all(|v| self.coeff(v) == 0)
    }

    /// True if affine and entirely constant.
    pub fn is_const(&self) -> bool {
        !self.nonaffine && self.terms.is_empty()
    }

    fn add_term(&mut self, v: Ident, c: i64) {
        use std::collections::btree_map::Entry;
        match self.terms.entry(v) {
            Entry::Occupied(mut o) => {
                *o.get_mut() += c;
                if *o.get() == 0 {
                    o.remove();
                }
            }
            Entry::Vacant(vac) => {
                if c != 0 {
                    vac.insert(c);
                }
            }
        }
    }

    /// `self + other` (bottom-propagating).
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        if self.nonaffine || other.nonaffine {
            return AffineExpr::bottom();
        }
        let mut out = self.clone();
        out.konst += other.konst;
        for (v, c) in &other.terms {
            out.add_term(v.clone(), *c);
        }
        out
    }

    /// `self - other` (bottom-propagating).
    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        self.add(&other.scale(-1))
    }

    /// `self * k`.
    pub fn scale(&self, k: i64) -> AffineExpr {
        if self.nonaffine {
            return AffineExpr::bottom();
        }
        if k == 0 {
            return AffineExpr::constant(0);
        }
        AffineExpr {
            terms: self.terms.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            konst: self.konst * k,
            nonaffine: false,
        }
    }
}

/// Extract the affine form of an integer expression. Any sub-expression
/// that is not integer affine (products of variables, divisions that do
/// not fold, float operations, array references, casts, intrinsic calls)
/// makes the result [`AffineExpr::bottom`].
pub fn affine_of(e: &Expr) -> AffineExpr {
    match e {
        Expr::IntLit(v) => AffineExpr::constant(*v),
        Expr::FloatLit(_) => AffineExpr::bottom(),
        Expr::Var(v) => AffineExpr::variable(v.clone()),
        Expr::Unary(UnOp::Neg, inner) => affine_of(inner).scale(-1),
        Expr::Unary(UnOp::Not, _) => AffineExpr::bottom(),
        Expr::Binary(op, l, r) => {
            let (la, ra) = (affine_of(l), affine_of(r));
            match op {
                BinOp::Add => la.add(&ra),
                BinOp::Sub => la.sub(&ra),
                BinOp::Mul => {
                    if la.is_const() {
                        ra.scale(la.konst)
                    } else if ra.is_const() {
                        la.scale(ra.konst)
                    } else {
                        AffineExpr::bottom()
                    }
                }
                BinOp::Shl => {
                    // A shift by an in-range constant is a power-of-two
                    // scale — the strength-reduced form the saturation
                    // phase emits must stay visible to dependence and
                    // coalescing analyses.
                    if ra.is_const() && (0..32).contains(&ra.konst) {
                        la.scale(1i64 << ra.konst)
                    } else {
                        AffineExpr::bottom()
                    }
                }
                BinOp::Div | BinOp::Rem => {
                    // Fold only fully-constant divisions.
                    if la.is_const() && ra.is_const() && ra.konst != 0 {
                        AffineExpr::constant(if *op == BinOp::Div {
                            la.konst / ra.konst
                        } else {
                            la.konst % ra.konst
                        })
                    } else {
                        AffineExpr::bottom()
                    }
                }
                _ => AffineExpr::bottom(),
            }
        }
        Expr::Cast(ty, inner) if ty.is_int() => affine_of(inner),
        _ => AffineExpr::bottom(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_ir::parse_program;

    fn affine(src_expr: &str) -> AffineExpr {
        // Parse inside a dummy function to reuse the expression parser.
        let src = format!("void f(int i, int j, int k, int n, float a[n]) {{ n = {src_expr}; }}");
        let p = parse_program(&src).unwrap();
        match &p.functions[0].body[0] {
            safara_ir::Stmt::Assign { rhs, .. } => affine_of(rhs),
            _ => unreachable!(),
        }
    }

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    #[test]
    fn simple_linear_forms() {
        let a = affine("2 * i + j - 1");
        assert_eq!(a.coeff(&id("i")), 2);
        assert_eq!(a.coeff(&id("j")), 1);
        assert_eq!(a.konst, -1);
        assert!(!a.nonaffine);
    }

    #[test]
    fn nested_scaling() {
        let a = affine("3 * (i - 2 * (j + 1))");
        assert_eq!(a.coeff(&id("i")), 3);
        assert_eq!(a.coeff(&id("j")), -6);
        assert_eq!(a.konst, -6);
    }

    #[test]
    fn cancellation_removes_zero_terms() {
        let a = affine("i + j - i");
        assert_eq!(a.coeff(&id("i")), 0);
        assert!(!a.terms.contains_key(&id("i")));
        assert_eq!(a.coeff(&id("j")), 1);
    }

    #[test]
    fn products_of_variables_are_bottom() {
        assert!(affine("i * j").nonaffine);
        assert!(affine("i / j").nonaffine);
        assert!(affine("i % 2").nonaffine); // variable % constant: not affine
    }

    #[test]
    fn constant_folding_in_div() {
        let a = affine("8 / 2 + 7 % 4");
        assert!(a.is_const());
        assert_eq!(a.konst, 7);
    }

    #[test]
    fn array_refs_are_bottom() {
        assert!(affine("i + n * 0 + (int) a[0]").nonaffine);
    }

    #[test]
    fn freeness_queries() {
        let a = affine("2 * i + 3");
        assert!(a.is_free_of(&id("j")));
        assert!(!a.is_free_of(&id("i")));
        assert!(a.is_free_of_all([&id("j"), &id("k")]));
        assert!(!a.is_free_of_all([&id("j"), &id("i")]));
        assert!(!AffineExpr::bottom().is_free_of(&id("j")));
    }

    #[test]
    fn sub_of_equal_is_zero() {
        let a = affine("2 * i + j + 5");
        let d = a.sub(&a);
        assert!(d.is_const());
        assert_eq!(d.konst, 0);
    }
}
