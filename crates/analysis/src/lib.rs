//! # safara-analysis — compiler analyses for OpenACC offload regions
//!
//! This crate implements the analyses SAFARA (§III of the paper) builds on:
//!
//! * [`affine`] — affine-form extraction for subscript expressions,
//! * [`region`] — offload-region structure: which loops are distributed
//!   over gangs/vector lanes (and to which thread dimension), which are
//!   sequential,
//! * [`depend`] — dependence distance tests between array references
//!   (GCD test and constant-distance subtraction on affine subscripts),
//! * [`reuse`] — data-reuse groups: intra-iteration (identical or
//!   loop-invariant references) and inter-iteration (constant distance on a
//!   sequential loop) reuse, the raw material of scalar replacement,
//! * [`coalesce`] — the Jang-et-al.-style memory access-pattern analysis
//!   that classifies each reference as coalesced / uncoalesced / broadcast
//!   with respect to the x-dimension thread index,
//! * [`memspace`] — classification into the GPU memory spaces the paper
//!   considers (read-only cached vs read/write global),
//! * [`cost`] — the `cost(R) = count(R) × latency(space(R))` model used to
//!   prioritize scalar-replacement candidates.

pub mod affine;
pub mod coalesce;
pub mod cost;
pub mod depend;
pub mod memspace;
pub mod region;
pub mod reuse;

pub use affine::AffineExpr;
pub use coalesce::{classify_ref, CoalesceClass};
pub use cost::{AccessClass, CostModel, LatencyTable};
pub use depend::{dep_distance, DepDistance};
pub use memspace::{classify_arrays, ArraySpace};
pub use region::{LoopInfo, RegionInfo, ThreadDim};
pub use reuse::{find_reuse_groups, ReuseGroup, ReuseKind};
