//! Memory-space classification of arrays within an offload region.
//!
//! Following §III-B.1 of the paper, array references are classified by the
//! GPU memory space they will live in. Our implementation (like the
//! paper's) considers **read-only** and **read/write global** data: an
//! array that is never written inside the region (or is declared `const`)
//! is eligible for the Kepler read-only data cache (`__ldg` loads), which
//! has markedly lower latency than an L2/global access.

use safara_ir::{ArrayTy, Ident, OffloadRegion, Param, Stmt};
use std::collections::BTreeMap;

/// Where an array's accesses are served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArraySpace {
    /// Never written in the region → read-only data cache eligible.
    ReadOnly,
    /// Written (or both read and written) → ordinary global memory.
    Global,
}

/// Per-array facts the rest of the pipeline needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayUsage {
    /// The array's declared type.
    pub ty: ArrayTy,
    /// Declared `const` on the parameter list.
    pub declared_const: bool,
    /// Read anywhere in the region.
    pub read: bool,
    /// Written anywhere in the region.
    pub written: bool,
    /// Resulting space.
    pub space: ArraySpace,
}

/// Classify every array *parameter* used inside `region` of a function
/// with parameter list `params`.
pub fn classify_arrays(
    params: &[Param],
    region: &OffloadRegion,
) -> BTreeMap<Ident, ArrayUsage> {
    let mut out: BTreeMap<Ident, ArrayUsage> = BTreeMap::new();
    for p in params {
        if let Param::Array { name, ty, is_const } = p {
            out.insert(
                name.clone(),
                ArrayUsage {
                    ty: ty.clone(),
                    declared_const: *is_const,
                    read: false,
                    written: false,
                    space: ArraySpace::ReadOnly,
                },
            );
        }
    }
    mark(&region.body, &mut out);
    for u in out.values_mut() {
        u.space = if u.written { ArraySpace::Global } else { ArraySpace::ReadOnly };
    }
    // Drop arrays not touched by this region.
    out.retain(|_, u| u.read || u.written);
    out
}

fn mark(stmts: &[Stmt], out: &mut BTreeMap<Ident, ArrayUsage>) {
    for (r, is_write) in safara_ir::visit::collect_array_refs(stmts) {
        if let Some(u) = out.get_mut(&r.array) {
            if is_write {
                u.written = true;
            } else {
                u.read = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_ir::parse_program;

    fn classify(src: &str) -> BTreeMap<Ident, ArrayUsage> {
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        classify_arrays(&f.params, f.regions()[0])
    }

    #[test]
    fn read_only_vs_global() {
        let m = classify(
            r#"
            void f(int n, const float in[n], float out[n], float tmp[n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) {
                  tmp[i] = in[i];
                  out[i] = tmp[i] * 2.0;
                }
              }
            }"#,
        );
        assert_eq!(m[&Ident::new("in")].space, ArraySpace::ReadOnly);
        assert_eq!(m[&Ident::new("out")].space, ArraySpace::Global);
        assert_eq!(m[&Ident::new("tmp")].space, ArraySpace::Global);
        assert!(m[&Ident::new("tmp")].read && m[&Ident::new("tmp")].written);
    }

    #[test]
    fn compound_assign_counts_as_read_and_write() {
        let m = classify(
            r#"
            void f(int n, float a[n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) { a[i] += 1.0; }
              }
            }"#,
        );
        let a = &m[&Ident::new("a")];
        assert!(a.read && a.written);
        assert_eq!(a.space, ArraySpace::Global);
    }

    #[test]
    fn untouched_arrays_are_dropped() {
        let m = classify(
            r#"
            void f(int n, float a[n], float unused[n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) { a[i] = 1.0; }
              }
            }"#,
        );
        assert!(m.contains_key(&Ident::new("a")));
        assert!(!m.contains_key(&Ident::new("unused")));
    }
}
