//! Data-reuse analysis: find groups of array references that can share a
//! register through scalar replacement.
//!
//! Three kinds of reuse are recognized (§III-B of the paper):
//!
//! * **Intra-iteration** — several textually distinct occurrences of the
//!   *same* subscript vector within one iteration (`b[j][0]` used twice in
//!   Fig. 5). Always safe, even on parallelized loops.
//! * **Invariant** — a reference whose subscripts do not involve the
//!   enclosing sequential loop's variable; it can be loaded once before
//!   the loop (`b[j][0]` w.r.t. the `i` loop in Fig. 5).
//! * **Inter-iteration** — references at constant distances along a
//!   sequential loop (`b[j][i-1]` / `b[j][i+1]`), replaced by rotating
//!   temporaries (Fig. 6). **Only** applied to sequential loops: applying
//!   it to a parallelized loop would create loop-carried dependences and
//!   sequentialize it (the paper's Fig. 3/4 pitfall — limitation 1 of
//!   Carr–Kennedy).
//!
//! References are first deduplicated into *reference classes* (unique
//! affine subscript vectors); classes are then linked into groups by
//! dependence distance.

use crate::affine::affine_of;
use crate::depend::{dep_distance, may_overlap, DepDistance};
use crate::region::RegionInfo;
use safara_ir::{ArrayRef, Ident, LValue, OffloadRegion, Stmt};

/// How a group's references reuse data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseKind {
    /// Identical subscripts within an iteration.
    Intra,
    /// Subscripts invariant w.r.t. the given sequential loop variable.
    Invariant {
        /// The sequential loop the reference is invariant in.
        var: Ident,
    },
    /// Constant distances along the given sequential loop variable.
    Inter {
        /// The sequential loop carrying the reuse.
        var: Ident,
        /// Largest distance between group members (registers needed is
        /// `max_distance + 1`).
        max_distance: u32,
    },
}

/// A deduplicated reference class: one distinct subscript vector.
#[derive(Debug, Clone, PartialEq)]
pub struct RefClass {
    /// The representative reference.
    pub r: ArrayRef,
    /// Textual read occurrences.
    pub reads: u32,
    /// Textual write occurrences.
    pub writes: u32,
    /// Estimated dynamic executions per thread (product of enclosing
    /// sequential-loop trip estimates).
    pub weight: u64,
    /// Variable of the innermost *sequential* loop enclosing the
    /// reference, if any.
    pub seq_ctx: Option<Ident>,
    /// Unique id of that loop *instance* — two loops over variables with
    /// the same name (e.g. the `i` of a forward and of a backward sweep)
    /// are different contexts and must never share reuse classes.
    pub ctx_id: Option<u32>,
}

/// A reuse group: one or more reference classes that scalar replacement
/// can serve from registers.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseGroup {
    /// The array referenced.
    pub array: Ident,
    /// Member classes. For `Inter` groups these are ordered by distance
    /// from the group leader (ascending).
    pub classes: Vec<RefClass>,
    /// For `Inter` groups, the distance of each class from the leader
    /// (parallel to `classes`; leader has distance 0).
    pub distances: Vec<i64>,
    /// Kind of reuse.
    pub kind: ReuseKind,
}

impl ReuseGroup {
    /// Registers a scalar-replacement of this group needs (one per
    /// rotating temporary; 64-bit elements need two hardware registers,
    /// which the caller accounts for via the element type).
    pub fn temps_needed(&self) -> u32 {
        match &self.kind {
            ReuseKind::Intra | ReuseKind::Invariant { .. } => 1,
            ReuseKind::Inter { max_distance, .. } => max_distance + 1,
        }
    }

    /// Estimated memory loads eliminated per thread by replacing this
    /// group (the quantity the cost model multiplies by latency).
    pub fn loads_saved(&self) -> u64 {
        let total_reads: u64 =
            self.classes.iter().map(|c| c.reads as u64 * c.weight).sum();
        match &self.kind {
            // One load survives per iteration of the context.
            ReuseKind::Intra => {
                let w = self.classes.first().map(|c| c.weight).unwrap_or(1);
                total_reads.saturating_sub(w)
            }
            // One load before the loop replaces all in-loop loads.
            ReuseKind::Invariant { .. } => total_reads.saturating_sub(1),
            // One leading-edge load per iteration replaces every class's
            // loads.
            ReuseKind::Inter { .. } => {
                let w = self.classes.first().map(|c| c.weight).unwrap_or(1);
                total_reads.saturating_sub(w)
            }
        }
    }

    /// Total textual read+write occurrences (the `reference_count(R)` of
    /// the paper's cost formula, before dynamic weighting).
    pub fn ref_count(&self) -> u32 {
        self.classes.iter().map(|c| c.reads + c.writes).sum()
    }
}

/// Find all reuse groups in an offload region.
///
/// `info` must be the result of [`RegionInfo::analyze`] on the same
/// region. Arrays are assumed non-aliasing (distinct OpenACC device
/// buffers).
pub fn find_reuse_groups(region: &OffloadRegion, info: &RegionInfo) -> Vec<ReuseGroup> {
    // 1. Collect references with their sequential-loop context.
    let mut occs = Vec::new();
    let mut cursor = 0usize;
    collect_occurrences(&region.body, info, &mut Vec::new(), &mut cursor, &mut occs);

    // 2. Deduplicate into classes keyed by (array, seq ctx, affine form).
    let mut classes: Vec<RefClass> = Vec::new();
    for occ in &occs {
        let existing = classes.iter_mut().find(|c| {
            c.r.array == occ.r.array
                && c.seq_ctx == occ.seq_ctx
                && c.ctx_id == occ.ctx_id
                && same_subscripts(&c.r, &occ.r)
        });
        match existing {
            Some(c) => {
                if occ.is_write {
                    c.writes += 1;
                } else {
                    c.reads += 1;
                }
            }
            None => classes.push(RefClass {
                r: occ.r.clone(),
                reads: u32::from(!occ.is_write),
                writes: u32::from(occ.is_write),
                weight: occ.weight,
                seq_ctx: occ.seq_ctx.clone(),
                ctx_id: occ.ctx_id,
            }),
        }
    }

    // 3. Link classes into inter-iteration groups along their seq loop.
    let mut used = vec![false; classes.len()];
    let mut groups = Vec::new();
    for i in 0..classes.len() {
        if used[i] {
            continue;
        }
        let seq_var = match &classes[i].seq_ctx {
            Some(v) => v.clone(),
            None => continue,
        };
        // Writes invalidate rotation; only read-only classes join.
        if classes[i].writes > 0 {
            continue;
        }
        // Rotation is only meaningful (and only performed) on unit-stride
        // loops: on a strided loop the dependence distances below are in
        // subscript units, not iterations. Leave the classes free for
        // intra-iteration grouping instead (which is how unrolled loops
        // recover their reuse).
        let unit_stride = classes[i]
            .ctx_id
            .and_then(|id| info.loops.get(id as usize))
            .map(|l| l.step == 1)
            .unwrap_or(false);
        if !unit_stride {
            continue;
        }
        let mut members = vec![i];
        let mut dists = vec![0i64];
        for j in (i + 1)..classes.len() {
            if used[j]
                || classes[j].writes > 0
                || classes[j].r.array != classes[i].r.array
                || classes[j].seq_ctx.as_ref() != Some(&seq_var)
                || classes[j].ctx_id != classes[i].ctx_id
            {
                continue;
            }
            if let DepDistance::Const(d) = dep_distance(&classes[j].r, &classes[i].r, &seq_var) {
                members.push(j);
                dists.push(d);
            }
        }
        if members.len() < 2 {
            continue;
        }
        // The array must not be written at overlapping subscripts inside
        // the carrying loop (or loops nested within it), or rotated values
        // would go stale. Writes in *other* loop nests execute in other
        // kernels/iterations and do not interact with the rotation.
        let group_loop = classes[i].ctx_id.expect("inter groups have a seq loop");
        let written_refs: Vec<&ArrayRef> = occs
            .iter()
            .filter(|o| {
                o.is_write
                    && o.r.array == classes[i].r.array
                    && o.ctx_chain.contains(&group_loop)
            })
            .map(|o| &o.r)
            .collect();
        let clobbered = members.iter().any(|&m| {
            written_refs.iter().any(|w| may_overlap(w, &classes[m].r))
        });
        if clobbered {
            continue;
        }
        // Normalize distances so the leader (distance 0) is the smallest.
        let min_d = *dists.iter().min().expect("nonempty");
        for d in &mut dists {
            *d -= min_d;
        }
        let max_d = *dists.iter().max().expect("nonempty");
        if max_d > 8 {
            continue; // unreasonable register demand; leave to cache
        }
        // Sort members by distance.
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by_key(|&k| dists[k]);
        let group = ReuseGroup {
            array: classes[i].r.array.clone(),
            classes: order.iter().map(|&k| classes[members[k]].clone()).collect(),
            distances: order.iter().map(|&k| dists[k]).collect(),
            kind: ReuseKind::Inter { var: seq_var.clone(), max_distance: max_d as u32 },
        };
        for &m in &members {
            used[m] = true;
        }
        groups.push(group);
    }

    // 4. Invariant groups: classes inside a seq loop whose subscripts are
    //    free of the loop variable (and still unused by an inter group).
    for (i, c) in classes.iter().enumerate() {
        if used[i] {
            continue;
        }
        let seq_var = match &c.seq_ctx {
            Some(v) => v.clone(),
            None => continue,
        };
        let free = c.r.indices.iter().all(|ix| affine_of(ix).is_free_of(&seq_var));
        if !free {
            continue;
        }
        // Cannot hoist if another write to the array *inside the carrying
        // loop* may touch this element — or if the very same element is
        // written under a different loop context anywhere in the region
        // (the temporary could then go stale between the hoisted load and
        // a use: e.g. an unrolled main loop updates `c[i]` before the
        // remainder loop's hoisted copy reads it).
        let inv_loop = c.ctx_id.expect("invariant groups have a seq loop");
        let conflict = occs.iter().any(|o| {
            o.is_write
                && o.r.array == c.r.array
                && ((o.ctx_chain.contains(&inv_loop)
                    && !same_subscripts(&o.r, &c.r)
                    && may_overlap(&o.r, &c.r))
                    || (o.ctx_id != c.ctx_id && same_subscripts(&o.r, &c.r)))
        });
        if conflict {
            continue;
        }
        // Only worthwhile if the loop actually repeats the access, i.e.
        // reads + writes ≥ 1 and loop trips > 1 — the trip estimate is in
        // the weight; single-use invariants still save (trip-1) loads.
        if c.reads == 0 {
            continue; // pure writes cannot be hoisted without a mask
        }
        groups.push(ReuseGroup {
            array: c.r.array.clone(),
            classes: vec![c.clone()],
            distances: vec![0],
            kind: ReuseKind::Invariant { var: seq_var },
        });
    }

    // 5. Intra groups: remaining classes with ≥ 2 accesses (or a
    //    read-modify-write pair) — one temp per class.
    let invariant_covered: Vec<ArrayRef> = groups
        .iter()
        .filter(|g| matches!(g.kind, ReuseKind::Invariant { .. }))
        .map(|g| g.classes[0].r.clone())
        .collect();
    for (i, c) in classes.iter().enumerate() {
        if used[i] {
            continue;
        }
        if invariant_covered.iter().any(|r| same_subscripts(r, &c.r)) {
            continue;
        }
        if c.reads + c.writes < 2 || c.reads == 0 {
            continue;
        }
        // The same element must not be written under a different loop
        // context: a nested loop's write-through would leave this scope's
        // temporary stale (and vice versa).
        let escapes = occs.iter().any(|o| {
            o.is_write
                && o.r.array == c.r.array
                && o.ctx_id != c.ctx_id
                && same_subscripts(&o.r, &c.r)
        });
        if escapes {
            continue;
        }
        groups.push(ReuseGroup {
            array: c.r.array.clone(),
            classes: vec![c.clone()],
            distances: vec![0],
            kind: ReuseKind::Intra,
        });
    }

    groups
}

/// Structural subscript equality modulo affine normalization.
pub fn same_subscripts(a: &ArrayRef, b: &ArrayRef) -> bool {
    a.indices.len() == b.indices.len()
        && a.indices.iter().zip(&b.indices).all(|(x, y)| {
            let (fx, fy) = (affine_of(x), affine_of(y));
            if fx.nonaffine || fy.nonaffine {
                return x == y; // fall back to structural equality
            }
            let d = fx.sub(&fy);
            d.is_const() && d.konst == 0
        })
}

struct Occurrence {
    r: ArrayRef,
    is_write: bool,
    weight: u64,
    seq_ctx: Option<Ident>,
    ctx_id: Option<u32>,
    /// Ids of every enclosing sequential loop (outermost first) — used to
    /// scope write-clobber checks to the loop instance that carries a
    /// reuse group, rather than the whole region.
    ctx_chain: Vec<u32>,
}

/// Walk pre-order, pairing every `For` with the corresponding entry of
/// `info.loops` (also pre-order) via `cursor` — loops are identified by
/// *instance*, never by variable name, so nests that reuse `i`/`j`/`k`
/// cannot contaminate each other. A sequential loop's context id is its
/// pre-order index.
fn collect_occurrences(
    stmts: &[Stmt],
    info: &RegionInfo,
    seq_stack: &mut Vec<(Ident, u64, u32)>,
    cursor: &mut usize,
    out: &mut Vec<Occurrence>,
) {
    let push = |out: &mut Vec<Occurrence>, seq_stack: &[(Ident, u64, u32)], r: &ArrayRef, w: bool| {
        out.push(Occurrence {
            r: r.clone(),
            is_write: w,
            weight: seq_stack.iter().map(|(_, t, _)| t.max(&1)).product::<u64>().max(1),
            seq_ctx: seq_stack.last().map(|(v, _, _)| v.clone()),
            ctx_id: seq_stack.last().map(|(_, _, id)| *id),
            ctx_chain: seq_stack.iter().map(|(_, _, id)| *id).collect(),
        });
    };
    for s in stmts {
        match s {
            Stmt::DeclScalar { init, .. } => {
                if let Some(e) = init {
                    for_each_read(e, &mut |r| push(out, seq_stack, r, false));
                }
            }
            Stmt::Assign { lhs, op, rhs } => {
                if let LValue::ArrayRef(a) = lhs {
                    for ix in &a.indices {
                        for_each_read(ix, &mut |r| push(out, seq_stack, r, false));
                    }
                    if op.bin_op().is_some() {
                        push(out, seq_stack, a, false);
                    }
                    push(out, seq_stack, a, true);
                }
                for_each_read(rhs, &mut |r| push(out, seq_stack, r, false));
            }
            Stmt::For(f) => {
                for_each_read(&f.lo, &mut |r| push(out, seq_stack, r, false));
                for_each_read(&f.bound, &mut |r| push(out, seq_stack, r, false));
                let li = info.loops.get(*cursor);
                debug_assert!(
                    li.map(|l| l.var == f.var).unwrap_or(true),
                    "loop cursor out of sync with RegionInfo"
                );
                let id = *cursor as u32;
                *cursor += 1;
                let is_seq = li.map(|l| l.mapped.is_none()).unwrap_or(true);
                if is_seq {
                    let trip = li.map(|l| l.est_trip).unwrap_or(1);
                    seq_stack.push((f.var.clone(), trip, id));
                    collect_occurrences(&f.body, info, seq_stack, cursor, out);
                    seq_stack.pop();
                } else {
                    collect_occurrences(&f.body, info, seq_stack, cursor, out);
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                for_each_read(cond, &mut |r| push(out, seq_stack, r, false));
                collect_occurrences(then_body, info, seq_stack, cursor, out);
                collect_occurrences(else_body, info, seq_stack, cursor, out);
            }
            Stmt::Block(b) => collect_occurrences(b, info, seq_stack, cursor, out),
            Stmt::Region(_) => {} // regions cannot nest (sema enforces)
        }
    }
}

fn for_each_read(e: &safara_ir::Expr, f: &mut impl FnMut(&ArrayRef)) {
    safara_ir::visit::walk_expr(e, &mut |e| {
        if let safara_ir::Expr::ArrayRef(a) = e {
            f(a);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_ir::parse_program;

    fn groups_of(src: &str) -> Vec<ReuseGroup> {
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        let region = f.regions()[0];
        let info = RegionInfo::analyze(region);
        find_reuse_groups(region, &info)
    }

    /// The paper's Fig. 5 program.
    const FIG5: &str = r#"
    void fig5(int jsize, int isize, float a[258][258], float b[258][258],
              float c[258], float d[258]) {
      #pragma acc kernels
      {
        #pragma acc loop gang vector
        for (int j = 1; j <= jsize; j++) {
          c[j] = b[j][0] + b[j][1];
          d[j] = c[j] * b[j][0];
          #pragma acc loop seq
          for (int i = 1; i <= isize; i++) {
            a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
          }
        }
      }
    }"#;

    #[test]
    fn fig5_finds_inter_group_on_b() {
        let groups = groups_of(FIG5);
        let inter: Vec<&ReuseGroup> = groups
            .iter()
            .filter(|g| matches!(g.kind, ReuseKind::Inter { .. }))
            .collect();
        // b[j][i-1] / b[j][i+1] with distance 2 on i.
        let b = inter.iter().find(|g| g.array.as_str() == "b").expect("b inter group");
        match &b.kind {
            ReuseKind::Inter { var, max_distance } => {
                assert_eq!(var.as_str(), "i");
                assert_eq!(*max_distance, 2);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(b.temps_needed(), 3); // b0, b1, b2 as in Fig. 6
        assert_eq!(b.distances, vec![0, 2]);
    }

    #[test]
    fn fig5_a_refs_not_rotated_because_written() {
        // a is written (a[i][j] +=) at subscripts overlapping a[i±1][j]
        // across iterations, so no inter group on a may form.
        let groups = groups_of(FIG5);
        assert!(
            !groups
                .iter()
                .any(|g| g.array.as_str() == "a" && matches!(g.kind, ReuseKind::Inter { .. })),
            "a must not get an inter-iteration group: it is written in the loop"
        );
    }

    #[test]
    fn intra_reuse_of_identical_refs() {
        // b[j][0] appears twice in one iteration of the parallel loop:
        // intra reuse (no seq context at that nesting level).
        let groups = groups_of(FIG5);
        let intra: Vec<&ReuseGroup> = groups
            .iter()
            .filter(|g| g.kind == ReuseKind::Intra && g.array.as_str() == "b")
            .collect();
        assert_eq!(intra.len(), 1);
        assert_eq!(intra[0].classes[0].reads, 2);
        assert_eq!(intra[0].loads_saved(), 1);
    }

    #[test]
    fn no_inter_groups_on_parallel_loops() {
        // The paper's Fig. 3: b[i] and b[i+1] on a *parallelized* loop must
        // NOT become an inter-iteration group (that would sequentialize).
        let groups = groups_of(
            r#"
            void fig3(int n, float a[1026], float b[1026]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 1; i <= n; i++) {
                  a[i] = (b[i] + b[i + 1]) / 2.0;
                }
              }
            }"#,
        );
        assert!(
            groups.iter().all(|g| !matches!(g.kind, ReuseKind::Inter { .. })),
            "inter-iteration SR on a parallel loop would sequentialize it: {groups:?}"
        );
    }

    #[test]
    fn inter_group_allowed_on_seq_loop() {
        // Same pattern but the loop is seq: rotation is legal (Fig. 4).
        let groups = groups_of(
            r#"
            void f(int n, float a[1026], float b[1026]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int t = 0; t < 4; t++) {
                  #pragma acc loop seq
                  for (int i = 1; i <= n; i++) {
                    a[i] = (b[i] + b[i + 1]) / 2.0;
                  }
                }
              }
            }"#,
        );
        let g = groups
            .iter()
            .find(|g| matches!(g.kind, ReuseKind::Inter { .. }))
            .expect("inter group on seq loop");
        assert_eq!(g.array.as_str(), "b");
        assert_eq!(g.temps_needed(), 2);
    }

    #[test]
    fn invariant_group_detected() {
        let groups = groups_of(
            r#"
            void f(int n, int m, float a[n][m], const float s[n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) {
                  #pragma acc loop seq
                  for (int k = 0; k < 100; k++) {
                    a[i][k] = a[i][k] + s[i];
                  }
                }
              }
            }"#,
        );
        let inv = groups
            .iter()
            .find(|g| matches!(g.kind, ReuseKind::Invariant { .. }))
            .expect("invariant group for s[i]");
        assert_eq!(inv.array.as_str(), "s");
        assert_eq!(inv.temps_needed(), 1);
        // 100 iterations × 1 read − 1 hoisted load = 99 saved.
        assert_eq!(inv.loads_saved(), 99);
    }

    #[test]
    fn rmw_same_subscript_is_intra() {
        let groups = groups_of(
            r#"
            void f(int n, float a[n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) {
                  a[i] += 1.0;
                  a[i] += 2.0;
                }
              }
            }"#,
        );
        let g = groups.iter().find(|g| g.kind == ReuseKind::Intra).expect("intra rmw group");
        assert_eq!(g.classes[0].reads, 2);
        assert_eq!(g.classes[0].writes, 2);
    }

    #[test]
    fn weights_multiply_across_nested_seq_loops() {
        let groups = groups_of(
            r#"
            void f(int n, const float c[n], float a[n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) {
                  #pragma acc loop seq
                  for (int p = 0; p < 10; p++) {
                    #pragma acc loop seq
                    for (int q = 0; q < 5; q++) {
                      a[i] += c[i];
                    }
                  }
                }
              }
            }"#,
        );
        let inv = groups
            .iter()
            .find(|g| g.array.as_str() == "c")
            .expect("invariant c[i] group");
        assert_eq!(inv.classes[0].weight, 50);
    }
}
