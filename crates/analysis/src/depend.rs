//! Dependence-distance testing between array references.
//!
//! The Carr–Kennedy algorithm (and SAFARA) need *input* and *flow*
//! dependences with **constant distance** on a chosen loop variable: a pair
//! like `b[j][i-1]` / `b[j][i+1]` carries a reuse distance of 2 on `i`.
//!
//! For affine subscripts the distance on loop `v` exists when the two
//! references have identical coefficients for every variable and the
//! subscript difference is confined to the `v` term, i.e.
//! `f(v) - g(v) = d · coeff(v)`. A GCD feasibility test
//! ([`gcd_test`]) additionally rules out pairs that can never access the
//! same element.

use crate::affine::{affine_of, AffineExpr};
use safara_ir::{ArrayRef, Ident};

/// Result of a distance test between two references to the same array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepDistance {
    /// Subscripts are identical in every dimension.
    Same,
    /// Subscripts differ by a constant number of iterations of the given
    /// loop variable (positive = the first reference reads "later" data).
    Const(i64),
    /// The references can never overlap (provably independent).
    Independent,
    /// Analysis could not decide (non-affine or mixed differences).
    Unknown,
}

/// Compute the dependence distance between `a` and `b` with respect to
/// loop variable `v`. Both must reference the same array (panics
/// otherwise — callers group by array first).
pub fn dep_distance(a: &ArrayRef, b: &ArrayRef, v: &Ident) -> DepDistance {
    assert_eq!(a.array, b.array, "dep_distance requires references to one array");
    if a.indices.len() != b.indices.len() {
        return DepDistance::Unknown;
    }
    let mut distance: Option<i64> = None;
    let mut all_same = true;
    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        let (fa, fb) = (affine_of(ia), affine_of(ib));
        if fa.nonaffine || fb.nonaffine {
            return DepDistance::Unknown;
        }
        let diff = fa.sub(&fb);
        if diff.is_const() && diff.konst == 0 {
            continue; // identical in this dimension
        }
        all_same = false;
        // The difference must be a constant (no variable terms), and the
        // common coefficient of `v` must divide it for an integer distance.
        if !diff.is_const() {
            return DepDistance::Unknown;
        }
        let cv = fa.coeff(v);
        if cv == 0 || cv != fb.coeff(v) {
            // `v` does not drive this dimension identically: if the
            // difference is a nonzero constant and no variable can make up
            // for it, the refs never overlap in this dimension.
            if cv == 0 && fb.coeff(v) == 0 {
                return DepDistance::Independent;
            }
            return DepDistance::Unknown;
        }
        if diff.konst % cv != 0 {
            return DepDistance::Independent; // GCD-style: no integer solution
        }
        let d = diff.konst / cv;
        match distance {
            None => distance = Some(d),
            Some(prev) if prev == d => {}
            Some(_) => return DepDistance::Unknown, // inconsistent dims
        }
    }
    if all_same {
        DepDistance::Same
    } else {
        match distance {
            Some(d) => DepDistance::Const(d),
            None => DepDistance::Unknown,
        }
    }
}

/// Classical GCD feasibility test for a single-dimension pair
/// `a1*i + c1` vs `a2*i' + c2`: a dependence requires
/// `gcd(a1, a2) | (c2 - c1)`.
///
/// Returns `true` when a dependence is *possible*.
pub fn gcd_test(a1: i64, c1: i64, a2: i64, c2: i64) -> bool {
    let g = gcd(a1.unsigned_abs(), a2.unsigned_abs());
    if g == 0 {
        return c1 == c2;
    }
    (c2 - c1).unsigned_abs().is_multiple_of(g)
}

/// Greatest common divisor.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// True when two references *may* access the same element for some
/// iteration values (a conservative may-alias test over all dimensions).
pub fn may_overlap(a: &ArrayRef, b: &ArrayRef) -> bool {
    if a.array != b.array || a.indices.len() != b.indices.len() {
        return false;
    }
    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        let (fa, fb) = (affine_of(ia), affine_of(ib));
        if fa.nonaffine || fb.nonaffine {
            return true; // unknown → may overlap
        }
        let diff = fa.sub(&fb);
        if diff.is_const() && diff.konst != 0 {
            // Constant nonzero difference with identical variable parts:
            // same iteration never overlaps, but different iterations may.
            // For the *whole-space* overlap question used here (can the
            // two refs ever touch the same element), a GCD test over the
            // union of variable coefficients decides it.
            let g = fa
                .terms
                .values()
                .chain(fb.terms.values())
                .fold(0u64, |g, &c| gcd(g, c.unsigned_abs()));
            if g == 0 || diff.konst.unsigned_abs() % g != 0 {
                return false;
            }
        }
    }
    true
}

/// The affine difference between two references, per dimension
/// (used by the `dim`-clause offset CSE to prove two refs share an
/// offset expression).
pub fn subscript_diffs(a: &ArrayRef, b: &ArrayRef) -> Option<Vec<AffineExpr>> {
    if a.indices.len() != b.indices.len() {
        return None;
    }
    let mut out = Vec::with_capacity(a.indices.len());
    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        let (fa, fb) = (affine_of(ia), affine_of(ib));
        if fa.nonaffine || fb.nonaffine {
            return None;
        }
        out.push(fa.sub(&fb));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_ir::{Expr, Ident};

    fn aref(name: &str, idxs: Vec<Expr>) -> ArrayRef {
        ArrayRef { array: Ident::new(name), indices: idxs }
    }

    fn iv(name: &str) -> Expr {
        Expr::var(name)
    }

    fn plus(e: Expr, k: i64) -> Expr {
        Expr::bin(safara_ir::BinOp::Add, e, Expr::IntLit(k))
    }

    #[test]
    fn identical_refs_are_same() {
        let a = aref("b", vec![iv("j"), iv("i")]);
        let b = aref("b", vec![iv("j"), iv("i")]);
        assert_eq!(dep_distance(&a, &b, &Ident::new("i")), DepDistance::Same);
    }

    #[test]
    fn fig3_distance_one() {
        // b[i] vs b[i+1] — the paper's Fig. 3 example, distance 1 on i.
        let a = aref("b", vec![iv("i")]);
        let b = aref("b", vec![plus(iv("i"), 1)]);
        assert_eq!(dep_distance(&b, &a, &Ident::new("i")), DepDistance::Const(1));
        assert_eq!(dep_distance(&a, &b, &Ident::new("i")), DepDistance::Const(-1));
    }

    #[test]
    fn fig5_inner_loop_distances() {
        // b[j][i-1] vs b[j][i+1]: distance 2 on i; j dimension identical.
        let a = aref("b", vec![iv("j"), plus(iv("i"), -1)]);
        let b = aref("b", vec![iv("j"), plus(iv("i"), 1)]);
        assert_eq!(dep_distance(&b, &a, &Ident::new("i")), DepDistance::Const(2));
    }

    #[test]
    fn strided_subscripts_divide() {
        // a[2i] vs a[2i+4]: distance 2. a[2i] vs a[2i+3]: independent.
        let a = aref("a", vec![Expr::bin(safara_ir::BinOp::Mul, Expr::IntLit(2), iv("i"))]);
        let b = aref(
            "a",
            vec![plus(Expr::bin(safara_ir::BinOp::Mul, Expr::IntLit(2), iv("i")), 4)],
        );
        assert_eq!(dep_distance(&b, &a, &Ident::new("i")), DepDistance::Const(2));
        let c = aref(
            "a",
            vec![plus(Expr::bin(safara_ir::BinOp::Mul, Expr::IntLit(2), iv("i")), 3)],
        );
        assert_eq!(dep_distance(&c, &a, &Ident::new("i")), DepDistance::Independent);
    }

    #[test]
    fn constant_subscripts_independent() {
        let a = aref("a", vec![Expr::IntLit(0)]);
        let b = aref("a", vec![Expr::IntLit(1)]);
        assert_eq!(dep_distance(&a, &b, &Ident::new("i")), DepDistance::Independent);
    }

    #[test]
    fn different_variable_parts_unknown() {
        // a[i] vs a[j]: difference is i - j, not constant → unknown.
        let a = aref("a", vec![iv("i")]);
        let b = aref("a", vec![iv("j")]);
        assert_eq!(dep_distance(&a, &b, &Ident::new("i")), DepDistance::Unknown);
    }

    #[test]
    fn nonaffine_is_unknown() {
        let a = aref("a", vec![Expr::bin(safara_ir::BinOp::Mul, iv("i"), iv("j"))]);
        let b = aref("a", vec![iv("i")]);
        assert_eq!(dep_distance(&a, &b, &Ident::new("i")), DepDistance::Unknown);
    }

    #[test]
    fn gcd_test_basics() {
        assert!(gcd_test(2, 0, 2, 4)); // 2i = 2i' + 4 solvable
        assert!(!gcd_test(2, 0, 2, 3)); // parity mismatch
        assert!(gcd_test(0, 5, 0, 5)); // constants equal
        assert!(!gcd_test(0, 5, 0, 6));
        assert!(gcd_test(3, 1, 6, 4)); // gcd 3 divides 3
    }

    #[test]
    fn may_overlap_respects_constant_gaps() {
        let a = aref("a", vec![iv("i")]);
        let b = aref("a", vec![plus(iv("i"), 1)]);
        assert!(may_overlap(&a, &b)); // across iterations
        let c = aref("a", vec![Expr::IntLit(0)]);
        let d = aref("a", vec![Expr::IntLit(3)]);
        assert!(!may_overlap(&c, &d));
        let e = aref("b", vec![iv("i")]);
        assert!(!may_overlap(&a, &e)); // different arrays
    }

    #[test]
    fn diagonal_offset_is_independent_wrt_inner_var() {
        // b[j+1][i+1] vs b[j][i]: varying only `i` can never make the
        // j-dimension (which differs by the constant 1) agree, so with
        // respect to `i` the pair is independent.
        let a = aref("b", vec![plus(iv("j"), 1), plus(iv("i"), 1)]);
        let b = aref("b", vec![iv("j"), iv("i")]);
        assert_eq!(dep_distance(&a, &b, &Ident::new("i")), DepDistance::Independent);
        // With respect to `j`, the i-dimension difference is the blocker in
        // the same way, so the overall answer is again Independent.
        assert_eq!(dep_distance(&a, &b, &Ident::new("j")), DepDistance::Independent);
    }
}
