//! Offload-region structure analysis.
//!
//! Walks the loop nest of an offload region and determines, for every
//! loop, whether it is distributed across device parallelism and, if so,
//! onto which thread dimension its iterations map. The convention (shared
//! with code generation) follows the paper's Fig. 8 example:
//!
//! * parallelized loops are assigned thread dimensions from the
//!   **innermost outward**: the innermost parallel loop maps to `x`
//!   (so consecutive iterations land on consecutive lanes of a warp),
//!   the next enclosing parallel loop to `y`, then `z`;
//! * `seq` loops (and loops without a parallel scheduling clause) execute
//!   sequentially inside each thread.

use safara_ir::{ForLoop, Ident, OffloadRegion, Stmt};

/// A device thread-grid dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThreadDim {
    /// Fastest-varying: lanes of a warp differ in `x` first.
    X,
    /// Second grid dimension.
    Y,
    /// Third grid dimension.
    Z,
}

impl ThreadDim {
    /// Dimension index (x=0, y=1, z=2).
    pub fn index(self) -> usize {
        match self {
            ThreadDim::X => 0,
            ThreadDim::Y => 1,
            ThreadDim::Z => 2,
        }
    }
}

/// Information about one loop in the region's nest.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// Induction variable.
    pub var: Ident,
    /// Nesting depth from the region root (0 = outermost).
    pub depth: usize,
    /// The thread dimension this loop's iterations are distributed over,
    /// or `None` for a sequential loop.
    pub mapped: Option<ThreadDim>,
    /// Estimated trip count: the constant value when bounds fold,
    /// otherwise a default estimate used only for cost weighting.
    pub est_trip: u64,
    /// True if this loop (or an ancestor) executes sequentially in-thread,
    /// i.e. its body runs `est_trip`-fold per thread.
    pub sequential: bool,
    /// The loop's constant step (sign included).
    pub step: i64,
}

/// Default trip-count estimate for loops whose bounds do not fold; used
/// only to weight reference counts in the cost model.
pub const DEFAULT_TRIP_ESTIMATE: u64 = 64;

/// Structure of one offload region.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionInfo {
    /// Every loop in the nest, pre-order.
    pub loops: Vec<LoopInfo>,
}

impl RegionInfo {
    /// Analyze `region`.
    pub fn analyze(region: &OffloadRegion) -> RegionInfo {
        // First pass: collect loops pre-order with parallel flags.
        let mut loops = Vec::new();
        collect(&region.body, 0, false, &mut loops);
        // Assign thread dimensions innermost-outward among parallel loops.
        // "Innermost" is the deepest parallel loop in the nest; when several
        // sibling nests exist, each chain gets its own assignment.
        let mut info = RegionInfo { loops };
        info.assign_dims();
        info
    }

    fn assign_dims(&mut self) {
        // During collection `mapped = Some(X)` is a placeholder meaning
        // "parallel". The real dimension of a parallel loop is decided by
        // how many parallel loops are strictly deeper within its subtree
        // (loops are stored pre-order, so a loop's subtree is the
        // contiguous run of following entries with greater depth):
        // 0 deeper → X, 1 deeper → Y, 2+ → Z.
        let n = self.loops.len();
        for i in 0..n {
            if self.loops[i].mapped.is_none() {
                continue;
            }
            let my_depth = self.loops[i].depth;
            // Count parallel descendants (contiguous following entries with
            // depth > my_depth form the subtree).
            let mut deeper = 0usize;
            for j in (i + 1)..n {
                if self.loops[j].depth <= my_depth {
                    break;
                }
                if self.loops[j].mapped.is_some() {
                    deeper += 1;
                }
            }
            self.loops[i].mapped = Some(match deeper {
                0 => ThreadDim::X,
                1 => ThreadDim::Y,
                _ => ThreadDim::Z,
            });
        }
    }

    /// The loop info for variable `v`, if `v` is a loop variable.
    pub fn loop_of(&self, v: &Ident) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| &l.var == v)
    }

    /// The induction variable mapped to thread dimension `d`, if any.
    pub fn var_for_dim(&self, d: ThreadDim) -> Option<&Ident> {
        self.loops.iter().find(|l| l.mapped == Some(d)).map(|l| &l.var)
    }

    /// Variables of all parallelized loops.
    pub fn parallel_vars(&self) -> Vec<&Ident> {
        self.loops.iter().filter(|l| l.mapped.is_some()).map(|l| &l.var).collect()
    }

    /// Variables of all sequential loops.
    pub fn seq_vars(&self) -> Vec<&Ident> {
        self.loops.iter().filter(|l| l.mapped.is_none()).map(|l| &l.var).collect()
    }

    /// Product of the estimated trip counts of the sequential loops
    /// enclosing... (used as the per-thread work multiplier).
    pub fn seq_trip_product(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.mapped.is_none())
            .map(|l| l.est_trip.max(1))
            .product::<u64>()
            .max(1)
    }
}

fn collect(stmts: &[Stmt], depth: usize, in_seq: bool, out: &mut Vec<LoopInfo>) {
    for s in stmts {
        match s {
            Stmt::For(f) => {
                let parallel = f.is_parallelized() && !in_seq;
                out.push(LoopInfo {
                    var: f.var.clone(),
                    depth,
                    // placeholder X for "parallel"; fixed by assign_dims
                    mapped: if parallel { Some(ThreadDim::X) } else { None },
                    est_trip: est_trip(f),
                    sequential: !parallel,
                    step: f.step,
                });
                collect(&f.body, depth + 1, in_seq || !parallel, out);
            }
            Stmt::If { then_body, else_body, .. } => {
                collect(then_body, depth, in_seq, out);
                collect(else_body, depth, in_seq, out);
            }
            Stmt::Block(b) => collect(b, depth, in_seq, out),
            _ => {}
        }
    }
}

fn est_trip(f: &ForLoop) -> u64 {
    match (f.lo.as_const(), f.bound.as_const()) {
        (Some(lo), Some(hi)) => {
            let span = match f.cmp {
                safara_ir::LoopCmp::Lt => hi - lo,
                safara_ir::LoopCmp::Le => hi - lo + 1,
                safara_ir::LoopCmp::Gt => lo - hi,
                safara_ir::LoopCmp::Ge => lo - hi + 1,
            };
            let step = f.step.unsigned_abs().max(1);
            if span <= 0 {
                0
            } else {
                (span as u64).div_ceil(step)
            }
        }
        _ => DEFAULT_TRIP_ESTIMATE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_ir::parse_program;

    fn region_info(src: &str) -> RegionInfo {
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        let regions = f.regions();
        RegionInfo::analyze(regions[0])
    }

    #[test]
    fn two_level_parallel_nest_maps_inner_to_x() {
        // Mirrors the paper's Fig. 8: outer j gang loop → y, inner i → x.
        let info = region_info(
            r#"
            void f(int nx, int ny, float a[ny][nx]) {
              #pragma acc kernels
              {
                #pragma acc loop gang
                for (int j = 0; j < ny; j++) {
                  #pragma acc loop vector
                  for (int i = 0; i < nx; i++) {
                    a[j][i] = 1.0;
                  }
                }
              }
            }"#,
        );
        assert_eq!(info.loop_of(&Ident::new("j")).unwrap().mapped, Some(ThreadDim::Y));
        assert_eq!(info.loop_of(&Ident::new("i")).unwrap().mapped, Some(ThreadDim::X));
        assert_eq!(info.var_for_dim(ThreadDim::X).unwrap().as_str(), "i");
    }

    #[test]
    fn seq_inner_loop_is_unmapped() {
        let info = region_info(
            r#"
            void f(int n, int nz, float a[n][nz]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) {
                  #pragma acc loop seq
                  for (int k = 2; k < 10; k++) {
                    a[i][k] = a[i][k - 1];
                  }
                }
              }
            }"#,
        );
        assert_eq!(info.loop_of(&Ident::new("i")).unwrap().mapped, Some(ThreadDim::X));
        let k = info.loop_of(&Ident::new("k")).unwrap();
        assert_eq!(k.mapped, None);
        assert!(k.sequential);
        assert_eq!(k.est_trip, 8);
        assert_eq!(info.seq_trip_product(), 8);
    }

    #[test]
    fn loop_under_seq_is_never_parallel() {
        // A gang/vector clause below a seq loop must not be honored: the
        // whole subtree runs in-thread.
        let info = region_info(
            r#"
            void f(int n, float a[n]) {
              #pragma acc kernels
              {
                #pragma acc loop seq
                for (int k = 0; k < 4; k++) {
                  #pragma acc loop gang vector
                  for (int i = 0; i < n; i++) {
                    a[i] = 1.0;
                  }
                }
              }
            }"#,
        );
        assert_eq!(info.loop_of(&Ident::new("i")).unwrap().mapped, None);
    }

    #[test]
    fn three_level_parallel_maps_xyz() {
        let info = region_info(
            r#"
            void f(int n, float a[n][n][n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang
                for (int z = 0; z < n; z++) {
                  #pragma acc loop gang
                  for (int y = 0; y < n; y++) {
                    #pragma acc loop vector
                    for (int x = 0; x < n; x++) {
                      a[z][y][x] = 0.0;
                    }
                  }
                }
              }
            }"#,
        );
        assert_eq!(info.loop_of(&Ident::new("z")).unwrap().mapped, Some(ThreadDim::Z));
        assert_eq!(info.loop_of(&Ident::new("y")).unwrap().mapped, Some(ThreadDim::Y));
        assert_eq!(info.loop_of(&Ident::new("x")).unwrap().mapped, Some(ThreadDim::X));
    }

    #[test]
    fn trip_estimates() {
        let info = region_info(
            r#"
            void f(int n, float a[n]) {
              #pragma acc kernels
              {
                #pragma acc loop gang vector
                for (int i = 0; i < n; i++) {
                  #pragma acc loop seq
                  for (int k = 0; k <= 9; k += 2) { a[i] = a[i] + 1.0; }
                }
              }
            }"#,
        );
        assert_eq!(info.loop_of(&Ident::new("k")).unwrap().est_trip, 5);
        // Non-constant bound → default estimate.
        assert_eq!(
            info.loop_of(&Ident::new("i")).unwrap().est_trip,
            DEFAULT_TRIP_ESTIMATE
        );
    }
}
