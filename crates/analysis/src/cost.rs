//! The SAFARA cost model (§III-B.3): `cost(R) = count(R) × latency(M)`.
//!
//! Latency figures are per-access warp-visible latencies in cycles,
//! defaulting to values recovered by the simulator's microbenchmark suite
//! (`safara-gpusim::microbench`, playing the role of the Wong et al.
//! microbenchmarks the paper cites). They can be overridden so compiler
//! behaviour can be studied under different memory models.

use crate::coalesce::CoalesceClass;
use crate::memspace::ArraySpace;
use crate::reuse::ReuseGroup;

/// The access classes the cost model distinguishes — the cross product of
/// memory space (read-only cached vs global) and coalescing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Read-only data, coalesced: served by the read-only cache.
    ReadOnlyCoalesced,
    /// Read-only data, scattered lanes.
    ReadOnlyUncoalesced,
    /// Read-only data, all lanes on one address (cache broadcast).
    ReadOnlyBroadcast,
    /// Read/write global, coalesced.
    GlobalCoalesced,
    /// Read/write global, scattered lanes — the most expensive class.
    GlobalUncoalesced,
    /// Read/write global, single address per warp.
    GlobalBroadcast,
}

impl AccessClass {
    /// Combine space and coalescing classifications.
    pub fn of(space: ArraySpace, coalesce: CoalesceClass) -> AccessClass {
        use AccessClass::*;
        match (space, coalesce) {
            (ArraySpace::ReadOnly, CoalesceClass::Coalesced) => ReadOnlyCoalesced,
            (ArraySpace::ReadOnly, CoalesceClass::Broadcast) => ReadOnlyBroadcast,
            (ArraySpace::ReadOnly, _) => ReadOnlyUncoalesced,
            (ArraySpace::Global, CoalesceClass::Coalesced) => GlobalCoalesced,
            (ArraySpace::Global, CoalesceClass::Broadcast) => GlobalBroadcast,
            (ArraySpace::Global, _) => GlobalUncoalesced,
        }
    }

    /// All classes, for table-driven tests and reports.
    pub const ALL: [AccessClass; 6] = [
        AccessClass::ReadOnlyCoalesced,
        AccessClass::ReadOnlyUncoalesced,
        AccessClass::ReadOnlyBroadcast,
        AccessClass::GlobalCoalesced,
        AccessClass::GlobalUncoalesced,
        AccessClass::GlobalBroadcast,
    ];
}

/// Per-class access latencies in cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyTable {
    /// Read-only cache, coalesced.
    pub ro_coalesced: u64,
    /// Read-only cache, uncoalesced (per-lane transactions serialize).
    pub ro_uncoalesced: u64,
    /// Read-only cache broadcast.
    pub ro_broadcast: u64,
    /// Global coalesced.
    pub global_coalesced: u64,
    /// Global uncoalesced.
    pub global_uncoalesced: u64,
    /// Global broadcast.
    pub global_broadcast: u64,
}

impl Default for LatencyTable {
    /// Kepler-class defaults (cycles), in line with published
    /// microbenchmark studies: read-only cache hits ≈ 140 cycles, global
    /// loads ≈ 350–400, and uncoalesced warp accesses pay an
    /// order-of-magnitude serialization penalty.
    fn default() -> Self {
        LatencyTable {
            ro_coalesced: 140,
            ro_uncoalesced: 1600,
            ro_broadcast: 140,
            global_coalesced: 380,
            global_uncoalesced: 4000,
            global_broadcast: 380,
        }
    }
}

impl LatencyTable {
    /// Latency for one access class.
    pub fn latency(&self, class: AccessClass) -> u64 {
        match class {
            AccessClass::ReadOnlyCoalesced => self.ro_coalesced,
            AccessClass::ReadOnlyUncoalesced => self.ro_uncoalesced,
            AccessClass::ReadOnlyBroadcast => self.ro_broadcast,
            AccessClass::GlobalCoalesced => self.global_coalesced,
            AccessClass::GlobalUncoalesced => self.global_uncoalesced,
            AccessClass::GlobalBroadcast => self.global_broadcast,
        }
    }
}

/// The candidate-prioritization model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Latency table (defaults to Kepler-class values).
    pub latencies: LatencyTable,
    /// When false, latency is ignored and candidates are ranked purely by
    /// reference count — the Carr–Kennedy CPU-style metric, kept for the
    /// ablation study of the paper's claim that a latency-aware model
    /// picks better candidates on GPUs.
    pub use_latency: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { latencies: LatencyTable::default(), use_latency: true }
    }
}

impl CostModel {
    /// A Carr–Kennedy-style model that counts references only.
    pub fn count_only() -> Self {
        CostModel { use_latency: false, ..Default::default() }
    }

    /// The paper's static formula: `reference_count(R) × latency(M)`.
    pub fn paper_cost(&self, group: &ReuseGroup, class: AccessClass) -> u64 {
        let l = if self.use_latency { self.latencies.latency(class) } else { 1 };
        group.ref_count() as u64 * l
    }

    /// The benefit estimate used for greedy selection: dynamic loads saved
    /// × latency of the access class. This refines the paper formula with
    /// trip-count weighting so hoisting out of long loops ranks above
    /// single-iteration reuse.
    pub fn benefit(&self, group: &ReuseGroup, class: AccessClass) -> u64 {
        let l = if self.use_latency { self.latencies.latency(class) } else { 1 };
        group.loads_saved() * l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::{RefClass, ReuseKind};
    use safara_ir::{ArrayRef, Expr, Ident};

    fn group(reads: u32, weight: u64, kind: ReuseKind) -> ReuseGroup {
        ReuseGroup {
            array: Ident::new("a"),
            classes: vec![RefClass {
                r: ArrayRef { array: Ident::new("a"), indices: vec![Expr::var("i")] },
                reads,
                writes: 0,
                weight,
                seq_ctx: None,
                ctx_id: None,
            }],
            distances: vec![0],
            kind,
        }
    }

    #[test]
    fn uncoalesced_global_dominates() {
        let t = LatencyTable::default();
        assert!(t.global_uncoalesced > t.global_coalesced);
        assert!(t.global_coalesced > t.ro_coalesced);
        assert!(t.ro_uncoalesced > t.ro_coalesced);
    }

    #[test]
    fn paper_cost_scales_with_latency() {
        let m = CostModel::default();
        let g = group(3, 1, ReuseKind::Intra);
        let cheap = m.paper_cost(&g, AccessClass::ReadOnlyCoalesced);
        let costly = m.paper_cost(&g, AccessClass::GlobalUncoalesced);
        assert!(costly > cheap);
        assert_eq!(cheap, 3 * m.latencies.ro_coalesced);
    }

    #[test]
    fn count_only_model_ignores_class() {
        let m = CostModel::count_only();
        let g = group(3, 1, ReuseKind::Intra);
        assert_eq!(
            m.paper_cost(&g, AccessClass::ReadOnlyCoalesced),
            m.paper_cost(&g, AccessClass::GlobalUncoalesced)
        );
    }

    #[test]
    fn benefit_weights_by_trip_count() {
        let m = CostModel::default();
        let hot = group(1, 100, ReuseKind::Invariant { var: Ident::new("k") });
        let cold = group(2, 1, ReuseKind::Intra);
        assert!(
            m.benefit(&hot, AccessClass::GlobalCoalesced)
                > m.benefit(&cold, AccessClass::GlobalCoalesced)
        );
    }

    #[test]
    fn access_class_of_combinations() {
        use crate::coalesce::CoalesceClass as C;
        use crate::memspace::ArraySpace as S;
        assert_eq!(AccessClass::of(S::ReadOnly, C::Coalesced), AccessClass::ReadOnlyCoalesced);
        assert_eq!(AccessClass::of(S::ReadOnly, C::Unknown), AccessClass::ReadOnlyUncoalesced);
        assert_eq!(AccessClass::of(S::Global, C::Broadcast), AccessClass::GlobalBroadcast);
        assert_eq!(AccessClass::of(S::Global, C::Uncoalesced), AccessClass::GlobalUncoalesced);
    }
}
