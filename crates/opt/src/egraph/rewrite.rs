//! The rewrite rule set and the saturation loop.
//!
//! Every rule is an algebraic identity over two's-complement wrapping
//! integer arithmetic, so it preserves simulated output bit-for-bit;
//! rules never fire on float-typed (or untyped) classes. The families:
//!
//! * **CSE** — free: hash-consing plus congruence closure share every
//!   structurally (or provably) equal subexpression.
//! * **Reassociation** — commutativity and associativity of `+`/`*`,
//!   which let the factoring rule find common factors in any position.
//! * **Constant folding** — mirrors [`Expr::as_const`] exactly
//!   (wrapping; `/`/`%` only with a nonzero divisor; `<<` only with an
//!   in-range count), plus the usual `x+0`, `x-0`, `x*1`, `x*0`,
//!   `x-x`, `x<<0` identities.
//! * **Offset factoring** — `a*c + b*c → (a+b)*c` (and the `-`
//!   variant), the generalization of the `dim` clause's Horner-form
//!   address grouping: expanded offsets regroup so partial products
//!   are shared, which is where the register wins come from.
//! * **Distribution over constants** — `(a±b)*k → a*k ± b*k` for
//!   literal `k` only. This is what strength-reduces induction
//!   increments: `(i+1)*c` exposes `i*c + c`, and `i*c` then shares
//!   with the un-incremented reference.
//! * **Strength reduction** — `x * 2^k → x << k`. Sound for both
//!   operand widths because the engines mask shift counts per width
//!   and `wrapping_mul(1<<k) == wrapping_shl(k)` in two's complement.
//! * **Cast collapse** — `(T) x → x` when `x` is already of type `T`.
//!
//! 32-bit narrowing is *not* an e-graph rule: removing an `(long)`
//! widen changes the class type, which a merge cannot express. It runs
//! as [`narrow_subscripts`], a guarded pre-rewrite applied while
//! populating the graph — see that function for the soundness
//! argument.

use super::{ClassId, EGraph, ENode, TypeEnv};
use safara_ir::{ArrayRef, BinOp, Expr, Ident, ScalarTy, UnOp};
use std::collections::HashSet;

/// Deterministic termination bounds for the saturation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturateConfig {
    /// Maximum rule rounds. Hitting this is benign: extraction from a
    /// partially saturated e-graph is still sound, we just may miss a
    /// cheaper form.
    pub max_rounds: u32,
    /// Maximum distinct e-nodes. Breaching this aborts the phase with
    /// a [`SaturateError`] — the escape hatch for pathological
    /// kernels whose equality space blows up.
    pub max_nodes: usize,
}

impl Default for SaturateConfig {
    fn default() -> Self {
        SaturateConfig { max_rounds: 6, max_nodes: 10_000 }
    }
}

/// Why the saturation loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A full round produced no new facts — the e-graph is saturated.
    Saturated,
    /// The round cap was reached first (benign).
    RoundCap,
}

impl StopReason {
    /// Stable lowercase name for traces.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Saturated => "saturated",
            StopReason::RoundCap => "round_cap",
        }
    }
}

/// Counters for the traced opt span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturateStats {
    /// Rounds actually run.
    pub rounds: u32,
    /// Live e-classes after the final rebuild.
    pub e_classes: usize,
    /// Distinct e-nodes after the final rebuild.
    pub e_nodes: usize,
    /// Why the loop stopped.
    pub stop: StopReason,
}

/// The e-node cap was breached: saturation refused to continue rather
/// than risk unbounded growth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaturateError {
    /// Human-readable description (node count, cap, round).
    pub message: String,
}

impl std::fmt::Display for SaturateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SaturateError {}

/// Run the rule set until saturation or a cap. Deterministic: rules
/// scan canonical class ids ascending and node lists in insertion
/// order, and the loop's stopping condition is a structural version
/// counter, never wall-clock.
pub fn saturate(eg: &mut EGraph, cfg: &SaturateConfig) -> Result<SaturateStats, SaturateError> {
    eg.rebuild();
    let mut rounds = 0u32;
    let stop = loop {
        if rounds >= cfg.max_rounds {
            break StopReason::RoundCap;
        }
        let v0 = eg.version();
        apply_rules(eg, cfg.max_nodes);
        eg.rebuild();
        rounds += 1;
        if eg.n_nodes() > cfg.max_nodes {
            return Err(SaturateError {
                message: format!(
                    "equality saturation exceeded the {}-e-node cap ({} nodes after round {})",
                    cfg.max_nodes,
                    eg.n_nodes(),
                    rounds
                ),
            });
        }
        if eg.version() == v0 {
            break StopReason::Saturated;
        }
    };
    Ok(SaturateStats {
        rounds,
        e_classes: eg.n_classes(),
        e_nodes: eg.n_nodes(),
        stop,
    })
}

/// One rule round: snapshot each class's nodes, then fire every rule
/// on every node. New nodes and unions land immediately (the snapshot
/// keeps iteration well-defined); congruence repair is deferred to the
/// caller's `rebuild`.
///
/// The node cap is enforced *inside* the round, not just between
/// rounds: rules read class lists that grow as earlier rules in the
/// same round fire, so growth within a single round can be
/// exponential on pathological inputs — an end-of-round check alone
/// would never be reached. A breach aborts the round; the caller then
/// surfaces the cap error.
fn apply_rules(eg: &mut EGraph, max_nodes: usize) {
    for id in eg.canonical_ids() {
        if eg.n_nodes() > max_nodes {
            return;
        }
        let id = eg.find(id);
        let nodes = eg.nodes(id).to_vec();
        for node in nodes {
            if eg.n_nodes() > max_nodes {
                return;
            }
            rewrite_node(eg, id, &node);
        }
    }
}

fn is_int_class(eg: &EGraph, id: ClassId) -> bool {
    matches!(eg.ty(id), Some(t) if t.is_int())
}

fn rewrite_node(eg: &mut EGraph, class: ClassId, node: &ENode) {
    // Cast collapse is type-directed, not arithmetic, so it runs even
    // for float-to-float no-op casts.
    if let ENode::Cast(ty, inner) = node {
        if eg.ty(*inner) == Some(*ty) {
            eg.union(class, *inner);
        }
        return;
    }
    // Everything below is integer ring algebra.
    if !is_int_class(eg, class) {
        return;
    }
    match node {
        ENode::Unary(UnOp::Neg, c) => {
            let c = eg.find(*c);
            if let Some(v) = eg.const_of(c) {
                let k = eg.add(ENode::Int(v.wrapping_neg()));
                eg.union(class, k);
            }
            // -(-x) = x
            for n in eg.nodes(c).to_vec() {
                if let ENode::Unary(UnOp::Neg, x) = n {
                    eg.union(class, x);
                }
            }
        }
        ENode::Bin(op, a, b) => {
            let (a, b) = (eg.find(*a), eg.find(*b));
            rewrite_bin(eg, class, *op, a, b);
        }
        _ => {}
    }
}

fn rewrite_bin(eg: &mut EGraph, class: ClassId, op: BinOp, a: ClassId, b: ClassId) {
    let (ca, cb) = (eg.const_of(a), eg.const_of(b));
    // Constant folding, mirroring Expr::as_const exactly.
    if let (Some(x), Some(y)) = (ca, cb) {
        let folded = match op {
            BinOp::Add => Some(x.wrapping_add(y)),
            BinOp::Sub => Some(x.wrapping_sub(y)),
            BinOp::Mul => Some(x.wrapping_mul(y)),
            BinOp::Div if y != 0 => Some(x.wrapping_div(y)),
            BinOp::Rem if y != 0 => Some(x.wrapping_rem(y)),
            BinOp::Shl if (0..32).contains(&y) => Some(x.wrapping_shl(y as u32)),
            _ => None,
        };
        if let Some(v) = folded {
            let k = eg.add(ENode::Int(v));
            eg.union(class, k);
        }
    }
    // Structural rules gain nothing on a class already known to be a
    // constant: extraction will pick the weight-0 literal regardless,
    // and on self-referential constant classes (`0 ≡ i*0` puts a `Mul`
    // into the zero class) associativity/factoring would grind out an
    // endless coset of junk identities (`0 ≡ 0*(i*i)`, ...).
    if eg.const_of(class).is_some() {
        return;
    }
    match op {
        BinOp::Add => {
            // Commutativity.
            let swapped = eg.add(ENode::Bin(BinOp::Add, b, a));
            eg.union(class, swapped);
            // Identity.
            if cb == Some(0) {
                eg.union(class, a);
            }
            if ca == Some(0) {
                eg.union(class, b);
            }
            // Associativity: (x + y) + b = x + (y + b).
            for n in eg.nodes(a).to_vec() {
                if let ENode::Bin(BinOp::Add, x, y) = n {
                    let yb = eg.add(ENode::Bin(BinOp::Add, y, b));
                    let t = eg.add(ENode::Bin(BinOp::Add, x, yb));
                    eg.union(class, t);
                }
            }
            factor(eg, class, BinOp::Add, a, b);
        }
        BinOp::Sub => {
            if cb == Some(0) {
                eg.union(class, a);
            }
            if a == b {
                let z = eg.add(ENode::Int(0));
                eg.union(class, z);
            }
            factor(eg, class, BinOp::Sub, a, b);
        }
        BinOp::Mul => {
            let swapped = eg.add(ENode::Bin(BinOp::Mul, b, a));
            eg.union(class, swapped);
            if cb == Some(1) {
                eg.union(class, a);
            }
            if ca == Some(1) {
                eg.union(class, b);
            }
            if cb == Some(0) || ca == Some(0) {
                let z = eg.add(ENode::Int(0));
                eg.union(class, z);
            }
            // Associativity: (x * y) * b = x * (y * b).
            for n in eg.nodes(a).to_vec() {
                if let ENode::Bin(BinOp::Mul, x, y) = n {
                    let yb = eg.add(ENode::Bin(BinOp::Mul, y, b));
                    let t = eg.add(ENode::Bin(BinOp::Mul, x, yb));
                    eg.union(class, t);
                }
            }
            // Distribution over a literal multiplier: (x ± y) * k =
            // x*k ± y*k. Restricted to constants so it feeds strength
            // reduction and induction-increment sharing without
            // exploding the graph on symbolic products.
            if cb.is_some() {
                for n in eg.nodes(a).to_vec() {
                    if let ENode::Bin(inner_op @ (BinOp::Add | BinOp::Sub), x, y) = n {
                        let xb = eg.add(ENode::Bin(BinOp::Mul, x, b));
                        let yb = eg.add(ENode::Bin(BinOp::Mul, y, b));
                        let t = eg.add(ENode::Bin(inner_op, xb, yb));
                        eg.union(class, t);
                    }
                }
            }
            // Strength reduction: x * 2^k = x << k. The shift count
            // stays < 31 so the identity holds at both operand widths.
            if let Some(k) = cb {
                if k >= 2 && k.count_ones() == 1 {
                    let sh = k.trailing_zeros();
                    if sh < 31 {
                        let shc = eg.add(ENode::Int(sh as i64));
                        let t = eg.add(ENode::Bin(BinOp::Shl, a, shc));
                        eg.union(class, t);
                    }
                }
            }
        }
        BinOp::Shl if cb == Some(0) => {
            eg.union(class, a);
        }
        // Division, remainder, comparisons, logical ops: constant
        // folding only (handled above); no algebraic rules — they are
        // not ring operations and reassociating them is unsound.
        _ => {}
    }
}

/// Factoring: `p*q ± r*s` with `q ≡ s` becomes `(p ± r)*q`. This is
/// the e-graph generalization of the `dim` clause's Horner-form
/// address grouping (`safara_ir::offset::row_major_offset`): an
/// expanded row-major offset `i*e1*e2 + j*e2 + k` refolds into
/// `(i*e1 + j)*e2 + k`, sharing the partial product. Commutativity of
/// `*` lets the common factor sit on either side.
fn factor(eg: &mut EGraph, class: ClassId, op: BinOp, a: ClassId, b: ClassId) {
    for na in eg.nodes(a).to_vec() {
        let ENode::Bin(BinOp::Mul, p, q) = na else { continue };
        for nb in eg.nodes(b).to_vec() {
            let ENode::Bin(BinOp::Mul, r, s) = nb else { continue };
            if eg.find(q) == eg.find(s) {
                let pr = eg.add(ENode::Bin(op, p, r));
                let t = eg.add(ENode::Bin(BinOp::Mul, pr, q));
                eg.union(class, t);
            }
        }
    }
}

/// The `small`-narrowing pre-rewrite: inside subscript indices of
/// arrays whose offsets codegen computes in 32-bit arithmetic
/// (provably-small static arrays, or honored `small`-clause members),
/// strip `(long)` widening casts of 32-bit integer subexpressions.
///
/// Soundness: codegen truncates the finished index to 32 bits for
/// these arrays anyway (`off_ty = B32`), and truncation is a ring
/// homomorphism for `+`, `-`, `*`, `<<` and negation — so computing
/// those operations at 32 bits instead of widening first yields the
/// same low 32 bits. The recursion only descends through exactly
/// those operators; a cast under `/`, `%`, a call, or a float
/// operation is never reached, and arrays *not* in `narrow` are left
/// untouched (the refusal case: without `small`, the widen must
/// stay).
pub fn narrow_subscripts(e: &Expr, env: &TypeEnv, narrow: &HashSet<Ident>) -> Expr {
    match e {
        Expr::ArrayRef(a) => {
            let indices = a
                .indices
                .iter()
                .map(|ix| {
                    let ix = narrow_subscripts(ix, env, narrow);
                    if narrow.contains(&a.array) {
                        strip_widen(&ix, env)
                    } else {
                        ix
                    }
                })
                .collect();
            Expr::ArrayRef(ArrayRef { array: a.array.clone(), indices })
        }
        Expr::Unary(op, inner) => {
            Expr::Unary(*op, Box::new(narrow_subscripts(inner, env, narrow)))
        }
        Expr::Binary(op, l, r) => Expr::bin(
            *op,
            narrow_subscripts(l, env, narrow),
            narrow_subscripts(r, env, narrow),
        ),
        Expr::Call(i, args) => Expr::Call(
            *i,
            args.iter().map(|a| narrow_subscripts(a, env, narrow)).collect(),
        ),
        Expr::Cast(ty, inner) => {
            Expr::Cast(*ty, Box::new(narrow_subscripts(inner, env, narrow)))
        }
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => e.clone(),
    }
}

/// Narrow one subscript index of a covered array: the entry point for
/// index expressions that appear *outside* any enclosing
/// [`Expr::ArrayRef`] (assignment-target subscripts, which the region
/// walker hands out as bare roots).
pub fn narrow_index(e: &Expr, env: &TypeEnv) -> Expr {
    strip_widen(e, env)
}

/// Descend through truncation-homomorphic operators, dropping `(long)`
/// widens of 32-bit subexpressions.
fn strip_widen(e: &Expr, env: &TypeEnv) -> Expr {
    match e {
        Expr::Cast(ScalarTy::I64, inner) if scalar_expr_ty(inner, env) == Some(ScalarTy::I32) => {
            strip_widen(inner, env)
        }
        Expr::Binary(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl), l, r) => {
            Expr::bin(*op, strip_widen(l, env), strip_widen(r, env))
        }
        Expr::Unary(UnOp::Neg, inner) => Expr::Unary(UnOp::Neg, Box::new(strip_widen(inner, env))),
        _ => e.clone(),
    }
}

/// Type of a scalar expression under `env`, mirroring sema's rules
/// (`None` when a name is unknown — such expressions are never
/// narrowed).
fn scalar_expr_ty(e: &Expr, env: &TypeEnv) -> Option<ScalarTy> {
    match e {
        Expr::IntLit(_) => Some(ScalarTy::I32),
        Expr::FloatLit(_) => Some(ScalarTy::F64),
        Expr::Var(v) => env.scalars.get(v).copied(),
        Expr::ArrayRef(a) => env.arrays.get(&a.array).copied(),
        Expr::Unary(UnOp::Neg, inner) => scalar_expr_ty(inner, env),
        Expr::Unary(UnOp::Not, _) => Some(ScalarTy::I32),
        Expr::Binary(op, l, r) => {
            if op.is_relational() {
                Some(ScalarTy::I32)
            } else {
                Some(scalar_expr_ty(l, env)?.unify(scalar_expr_ty(r, env)?))
            }
        }
        Expr::Call(i, args) => {
            let mut tys = Vec::with_capacity(args.len());
            for a in args {
                tys.push(scalar_expr_ty(a, env)?);
            }
            let all_int = tys.iter().all(|t| t.is_int());
            if matches!(
                i,
                safara_ir::Intrinsic::Min | safara_ir::Intrinsic::Max | safara_ir::Intrinsic::Abs
            ) && all_int
            {
                tys.into_iter().reduce(ScalarTy::unify)
            } else {
                Some(tys.into_iter().fold(ScalarTy::F32, ScalarTy::unify))
            }
        }
        Expr::Cast(ty, _) => Some(*ty),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{class_costs, extract_class, saturate_region, EGraph};
    use super::*;
    use safara_ir::{parse_program, printer::print_expr, Ident};
    use std::collections::HashMap;

    /// Saturate a single integer expression over int vars and return
    /// the extracted (cheapest) form, printed.
    fn simplify(src_expr: &str, cfg: &SaturateConfig) -> String {
        let mut env = TypeEnv::default();
        for v in ["i", "j", "k", "n", "m"] {
            env.scalars.insert(Ident::new(v), ScalarTy::I32);
        }
        let src = format!("void f(int i, int j, int k, int n, int m) {{ n = {src_expr}; }}");
        let p = parse_program(&src).unwrap();
        let safara_ir::Stmt::Assign { rhs, .. } = &p.functions[0].body[0] else { unreachable!() };
        let mut eg = EGraph::new(env);
        let root = eg.add_expr(rhs);
        saturate(&mut eg, cfg).expect("within caps");
        let costs = class_costs(&eg);
        let mut memo = HashMap::new();
        print_expr(&extract_class(&eg, &costs, eg.find(root), &mut memo))
    }

    fn simp(src_expr: &str) -> String {
        simplify(src_expr, &SaturateConfig::default())
    }

    #[test]
    fn constant_folding_and_identities() {
        assert_eq!(simp("i + 0"), "i");
        assert_eq!(simp("i * 1"), "i");
        assert_eq!(simp("i * 0"), "0");
        assert_eq!(simp("i - i"), "0");
        assert_eq!(simp("2 * 3 + i - 0"), "6 + i");
        assert_eq!(simp("i - (4 - 2 * 2)"), "i");
    }

    #[test]
    fn cse_is_inherent_and_extraction_is_stable() {
        // Structurally equal subtrees share a class; with nothing to
        // improve, extraction reproduces the input (first-inserted
        // tie-break keeps the original shape).
        assert_eq!(simp("(i + j) * k + (i + j)"), "(i + j) * k + (i + j)");
        assert_eq!(simp("i * j + k"), "i * j + k");
    }

    #[test]
    fn factoring_shares_common_factors() {
        assert_eq!(simp("i * n + j * n"), "(i + j) * n");
        assert_eq!(simp("i * n - j * n"), "(i - j) * n");
        // The factor may sit on either side (commutativity feeds the
        // matcher).
        assert_eq!(simp("n * i + j * n"), "(i + j) * n");
    }

    #[test]
    fn factoring_regroups_row_major_offsets() {
        // The expanded 3-D row-major offset refolds into the Horner
        // form the `dim` clause produces by hand: i*m*n + j*n + k
        // = (i*m + j)*n + k.
        let out = simp("i * m * n + j * n + k");
        assert_eq!(out, "(i * m + j) * n + k");
    }

    #[test]
    fn strength_reduction_rewrites_pow2_multiplies() {
        assert_eq!(simp("i * 8"), "i << 3");
        assert_eq!(simp("2 * i"), "i << 1");
        // Non-powers of two keep the multiply.
        assert_eq!(simp("i * 6"), "i * 6");
        // Distribution over the literal exposes the shared i<<2:
        // (i+1)*4 = i*4 + 4 = (i<<2) + 4.
        assert_eq!(simp("(i + 1) * 4"), "(i << 2) + 4");
    }

    #[test]
    fn float_expressions_are_never_rewritten() {
        let mut env = TypeEnv::default();
        env.scalars.insert(Ident::new("x"), ScalarTy::F32);
        let src = "void f(float x) { x = x * 8.0 + 0.0; }";
        let p = parse_program(src).unwrap();
        let safara_ir::Stmt::Assign { rhs, .. } = &p.functions[0].body[0] else { unreachable!() };
        let mut eg = EGraph::new(env);
        let root = eg.add_expr(rhs);
        saturate(&mut eg, &SaturateConfig::default()).unwrap();
        let costs = class_costs(&eg);
        let mut memo = HashMap::new();
        let out = print_expr(&extract_class(&eg, &costs, eg.find(root), &mut memo));
        assert_eq!(out, "x * 8.0 + 0.0", "float algebra must stay untouched");
    }

    #[test]
    fn node_cap_is_a_typed_error_not_a_hang() {
        let mut env = TypeEnv::default();
        for v in ["i", "j", "k", "n", "m"] {
            env.scalars.insert(Ident::new(v), ScalarTy::I32);
        }
        let src = "void f(int i, int j, int k, int n, int m) { n = (i + j) * (k + m) * (i + m) * (j + k); }";
        let p = parse_program(src).unwrap();
        let safara_ir::Stmt::Assign { rhs, .. } = &p.functions[0].body[0] else { unreachable!() };
        let mut eg = EGraph::new(env);
        eg.add_expr(rhs);
        let err = saturate(&mut eg, &SaturateConfig { max_rounds: 50, max_nodes: 24 })
            .expect_err("a tiny cap must trip");
        assert!(err.message.contains("e-node cap"), "got: {}", err.message);
    }

    #[test]
    fn round_cap_is_a_benign_stop() {
        let mut env = TypeEnv::default();
        env.scalars.insert(Ident::new("i"), ScalarTy::I32);
        let mut eg = EGraph::new(env);
        let e = Expr::bin(BinOp::Mul, Expr::var("i"), Expr::IntLit(8));
        let root = eg.add_expr(&e);
        let stats = saturate(&mut eg, &SaturateConfig { max_rounds: 1, max_nodes: 10_000 })
            .expect("round cap is not an error");
        assert_eq!(stats.stop, StopReason::RoundCap);
        assert_eq!(stats.rounds, 1);
        // One round was enough to discover the shift; extraction uses
        // whatever the graph holds so far.
        let costs = class_costs(&eg);
        let mut memo = HashMap::new();
        let out = print_expr(&extract_class(&eg, &costs, eg.find(root), &mut memo));
        assert_eq!(out, "i << 3");
    }

    /// Region-level fixture for the narrowing tests: a 1-D dynamic
    /// array indexed through a `(long)` widen.
    fn narrowing_fixture(clause: &str) -> String {
        let src = format!(
            "void f(int i, int n, float a[n]) {{\n\
             #pragma acc parallel{clause}\n\
             {{\n\
             #pragma acc loop gang vector\n\
             for (int t = 0; t < n; t++) {{ a[(long) (t + i)] = 1.0; }}\n\
             }}\n\
             }}"
        );
        let mut p = parse_program(&src).unwrap();
        let f = p.functions[0].clone();
        let body = &mut p.functions[0].body;
        let safara_ir::Stmt::Region(region) = &mut body[0] else { unreachable!() };
        saturate_region(&f, region, true, &SaturateConfig::default()).unwrap();
        let safara_ir::Stmt::For(l) = &region.body[0] else { unreachable!() };
        let safara_ir::Stmt::Assign { lhs: safara_ir::LValue::ArrayRef(a), .. } = &l.body[0]
        else {
            unreachable!()
        };
        print_expr(&a.indices[0])
    }

    #[test]
    fn narrowing_strips_widens_under_small() {
        assert_eq!(narrowing_fixture(" small(a)"), "t + i");
    }

    #[test]
    fn narrowing_refuses_without_small_proof() {
        // `a` is dynamic and not covered by `small`: the widen is
        // load-bearing (offsets may exceed 32 bits) and must stay.
        assert_eq!(narrowing_fixture(""), "(long) (t + i)");
    }

    #[test]
    fn narrowing_refuses_under_non_homomorphic_ops() {
        // Truncation does not commute with division, so a widen under
        // `/` keeps its cast even for a `small` array.
        let src = "void f(int i, int n, float a[n]) {\n\
             #pragma acc parallel small(a)\n\
             {\n\
             #pragma acc loop gang vector\n\
             for (int t = 0; t < n; t++) { a[((long) t) / 2] = 1.0; }\n\
             }\n\
             }";
        let mut p = parse_program(src).unwrap();
        let f = p.functions[0].clone();
        let safara_ir::Stmt::Region(region) = &mut p.functions[0].body[0] else { unreachable!() };
        saturate_region(&f, region, true, &SaturateConfig::default()).unwrap();
        let safara_ir::Stmt::For(l) = &region.body[0] else { unreachable!() };
        let safara_ir::Stmt::Assign { lhs: safara_ir::LValue::ArrayRef(a), .. } = &l.body[0]
        else {
            unreachable!()
        };
        assert_eq!(print_expr(&a.indices[0]), "(long) t / 2");
    }
}
