//! Cost-based extraction: pick the cheapest representative of each
//! class and rebuild an expression tree.
//!
//! The weights are a structural proxy for register pressure (shifts
//! and casts are near-free, multiplies hold two live values longer,
//! divides expand to long sequences, calls and memory reads pin
//! several registers). They only need to *rank* candidate forms — the
//! driver re-validates the extracted program against the real ptxas
//! register model before accepting it, so a mis-ranked extraction can
//! cost a missed win but never a regression.
//!
//! Determinism and termination:
//!
//! * Class costs are solved by fixpoint iteration from `∞` (the graph
//!   may contain cycles through identity merges such as `x ≡ x + 0`),
//!   scanning canonical ids ascending and node lists in insertion
//!   order.
//! * Node selection uses strict `<`, so the **first-inserted** node
//!   wins ties — the original program shape survives unless a strictly
//!   cheaper form exists, which keeps default-off byte-stability
//!   trivial and saturated output stable across runs.
//! * Every non-leaf weight is ≥ 1, so a chosen node's children have
//!   strictly smaller class cost than the class itself and the
//!   extraction recursion strictly descends.

use super::{ClassId, EGraph, ENode};
use safara_ir::{ArrayRef, BinOp, Expr};
use std::collections::HashMap;

/// Cost of the node itself, excluding children.
pub fn node_weight(node: &ENode) -> u64 {
    match node {
        ENode::Int(_) | ENode::Float(_) | ENode::Var(_) => 0,
        ENode::Cast(_, _) | ENode::Unary(_, _) => 1,
        ENode::Bin(op, _, _) => bin_weight(*op),
        ENode::Call(_, _) => 16,
        ENode::Ref(_, _) => 3,
    }
}

fn bin_weight(op: BinOp) -> u64 {
    match op {
        BinOp::Shl => 1,
        BinOp::Add | BinOp::Sub => 2,
        BinOp::Mul => 4,
        BinOp::Div | BinOp::Rem => 16,
        // Relational/logical ops are never rewritten, but roots may
        // contain them; any finite weight works.
        _ => 2,
    }
}

/// Tree cost of a plain expression under the same weights — the
/// "before" side of the phase's cost counters.
pub fn expr_cost(e: &Expr) -> u64 {
    match e {
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => 0,
        Expr::Unary(_, inner) => 1 + expr_cost(inner),
        Expr::Cast(_, inner) => 1 + expr_cost(inner),
        Expr::Binary(op, l, r) => bin_weight(*op) + expr_cost(l) + expr_cost(r),
        Expr::Call(_, args) => 16 + args.iter().map(expr_cost).sum::<u64>(),
        Expr::ArrayRef(a) => 3 + a.indices.iter().map(expr_cost).sum::<u64>(),
    }
}

/// Minimum cost per class id (non-canonical ids mirror their
/// canonical class). `u64::MAX` marks an unreachable class, which
/// cannot occur for any class populated from a real expression.
pub fn class_costs(eg: &EGraph) -> Vec<u64> {
    let n = eg.num_ids();
    let mut costs = vec![u64::MAX; n];
    loop {
        let mut changed = false;
        for id in eg.canonical_ids() {
            for node in eg.nodes(id) {
                let mut total = node_weight(node);
                let mut known = true;
                for c in node.children() {
                    let cc = costs[eg.find(c) as usize];
                    if cc == u64::MAX {
                        known = false;
                        break;
                    }
                    total = total.saturating_add(cc);
                }
                if known && total < costs[id as usize] {
                    costs[id as usize] = total;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for id in 0..n as ClassId {
        costs[id as usize] = costs[eg.find(id) as usize];
    }
    costs
}

/// Rebuild the cheapest expression for class `id`. `memo` caches per
/// canonical class so shared subexpressions extract once (and extract
/// to the *same* tree, preserving CSE downstream).
pub fn extract_class(
    eg: &EGraph,
    costs: &[u64],
    id: ClassId,
    memo: &mut HashMap<ClassId, Expr>,
) -> Expr {
    let id = eg.find(id);
    if let Some(e) = memo.get(&id) {
        return e.clone();
    }
    let target = costs[id as usize];
    debug_assert_ne!(target, u64::MAX, "extracting an unreachable class");
    // First node (insertion order) achieving the class cost.
    let best = eg
        .nodes(id)
        .iter()
        .find(|node| {
            let mut total = node_weight(node);
            for c in node.children() {
                let cc = costs[eg.find(c) as usize];
                if cc == u64::MAX {
                    return false;
                }
                total = total.saturating_add(cc);
            }
            total == target
        })
        .expect("class cost is achieved by some member")
        .clone();
    let e = match &best {
        ENode::Int(v) => Expr::IntLit(*v),
        ENode::Float(bits) => Expr::FloatLit(f64::from_bits(*bits)),
        ENode::Var(v) => Expr::Var(v.clone()),
        ENode::Unary(op, c) => Expr::Unary(*op, Box::new(extract_class(eg, costs, *c, memo))),
        ENode::Cast(ty, c) => Expr::Cast(*ty, Box::new(extract_class(eg, costs, *c, memo))),
        ENode::Bin(op, a, b) => Expr::bin(
            *op,
            extract_class(eg, costs, *a, memo),
            extract_class(eg, costs, *b, memo),
        ),
        ENode::Call(i, cs) => Expr::Call(
            *i,
            cs.iter().map(|&c| extract_class(eg, costs, c, memo)).collect(),
        ),
        ENode::Ref(a, cs) => Expr::ArrayRef(ArrayRef {
            array: a.clone(),
            indices: cs.iter().map(|&c| extract_class(eg, costs, c, memo)).collect(),
        }),
    };
    memo.insert(id, e.clone());
    e
}

#[cfg(test)]
mod tests {
    use super::super::{ENode, EGraph, TypeEnv};
    use super::*;
    use safara_ir::{printer::print_expr, Ident, ScalarTy};

    fn int_env(vars: &[&str]) -> TypeEnv {
        let mut env = TypeEnv::default();
        for v in vars {
            env.scalars.insert(Ident::new(v), ScalarTy::I32);
        }
        env
    }

    #[test]
    fn identity_cycles_extract_to_the_leaf() {
        // x ≡ x + 0 puts a self-referential Add into x's class; the
        // fixpoint assigns the class cost 0 (the leaf) and extraction
        // must pick the leaf, not recurse forever.
        let mut eg = EGraph::new(int_env(&["x"]));
        let x = eg.add(ENode::Var(Ident::new("x")));
        let z = eg.add(ENode::Int(0));
        let sum = eg.add(ENode::Bin(BinOp::Add, x, z));
        eg.union(sum, x);
        eg.rebuild();
        let costs = class_costs(&eg);
        assert_eq!(costs[eg.find(x) as usize], 0);
        let mut memo = HashMap::new();
        let e = extract_class(&eg, &costs, eg.find(sum), &mut memo);
        assert_eq!(print_expr(&e), "x");
    }

    #[test]
    fn ties_keep_the_first_inserted_node() {
        // a + b and b + a cost the same; the original (first) ordering
        // must win so unsaturated programs round-trip unchanged.
        let mut eg = EGraph::new(int_env(&["a", "b"]));
        let a = eg.add(ENode::Var(Ident::new("a")));
        let b = eg.add(ENode::Var(Ident::new("b")));
        let ab = eg.add(ENode::Bin(BinOp::Add, a, b));
        let ba = eg.add(ENode::Bin(BinOp::Add, b, a));
        eg.union(ab, ba);
        eg.rebuild();
        let costs = class_costs(&eg);
        let mut memo = HashMap::new();
        let e = extract_class(&eg, &costs, eg.find(ab), &mut memo);
        assert_eq!(print_expr(&e), "a + b");
    }

    #[test]
    fn shared_subexpressions_extract_to_identical_trees() {
        let mut eg = EGraph::new(int_env(&["i", "j", "k"]));
        let i = eg.add(ENode::Var(Ident::new("i")));
        let j = eg.add(ENode::Var(Ident::new("j")));
        let k = eg.add(ENode::Var(Ident::new("k")));
        let ij = eg.add(ENode::Bin(BinOp::Add, i, j));
        let m = eg.add(ENode::Bin(BinOp::Mul, ij, k));
        let root = eg.add(ENode::Bin(BinOp::Add, m, ij));
        let costs = class_costs(&eg);
        let mut memo = HashMap::new();
        let e = extract_class(&eg, &costs, root, &mut memo);
        assert_eq!(print_expr(&e), "(i + j) * k + (i + j)");
    }

    #[test]
    fn expr_cost_matches_class_cost_for_unrewritten_graphs() {
        let mut eg = EGraph::new(int_env(&["i", "n"]));
        let e = safara_ir::Expr::bin(
            BinOp::Add,
            safara_ir::Expr::bin(BinOp::Mul, safara_ir::Expr::var("i"), safara_ir::Expr::var("n")),
            safara_ir::Expr::IntLit(7),
        );
        let root = eg.add_expr(&e);
        let costs = class_costs(&eg);
        assert_eq!(costs[root as usize], expr_cost(&e));
    }
}
