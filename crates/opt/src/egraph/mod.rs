//! # Equality saturation over MiniACC scalar expressions
//!
//! A small in-tree e-graph in the style of ACC Saturator: expressions
//! from a kernel region are hash-consed into equivalence classes, a
//! fixed rule set (commutativity/associativity, constant folding,
//! offset factoring, strength reduction) is applied until saturation
//! or a deterministic cap, and the cheapest representative of each
//! root class is extracted back into the AST.
//!
//! Design constraints, in order:
//!
//! 1. **Bitwise identity.** Every rewrite must preserve the simulated
//!    output bit-for-bit across all three execution engines. Rules
//!    therefore fire only on *integer*-typed classes (two's-complement
//!    wrapping arithmetic is a ring; `-0.0`/NaN make float rewrites
//!    unsound), and 32-bit narrowing is a guarded, subscript-local
//!    pre-rewrite rather than a general e-class merge (see
//!    [`rewrite::narrow_subscripts`]).
//! 2. **Determinism.** `std::collections::HashMap` iterates in a
//!    random per-process order, so the hash-cons memo is used for
//!    *lookup only*. Rule application and extraction iterate class ids
//!    ascending and per-class node lists in insertion order; merges
//!    keep the lower class id as canonical. Same input, same output,
//!    every run.
//! 3. **Termination.** Saturation is bounded by a round cap (benign:
//!    extraction from a partially saturated e-graph is still sound)
//!    and an e-node cap (an error: the pathological-blowup escape
//!    hatch, surfaced as a typed `saturate` compile error upstream).
//!    Extraction terminates because every non-leaf node weight is
//!    ≥ 1, so chosen children always have strictly smaller class cost.
//!
//! The extraction weights are a local proxy for register pressure;
//! the driver re-validates the extracted program against the *real*
//! ptxas register model (and the occupancy oracle under a throughput
//! goal) before accepting it, so the phase can never regress the
//! predicted register count.

pub mod extract;
pub mod rewrite;

pub use extract::{class_costs, expr_cost, extract_class};
pub use rewrite::{
    narrow_index, narrow_subscripts, saturate, SaturateConfig, SaturateError, SaturateStats,
    StopReason,
};

use safara_ir::{
    BinOp, Expr, Function, Ident, Intrinsic, LValue, OffloadRegion, ScalarTy, Stmt, UnOp,
};
use std::collections::{HashMap, HashSet};

/// Index of an equivalence class. Canonical ids are resolved through
/// the union-find with [`EGraph::find`].
pub type ClassId = u32;

/// An expression node whose children are equivalence classes.
///
/// Float literals are stored as IEEE-754 bit patterns so the node is
/// `Eq + Hash` without equating `0.0` and `-0.0` (they behave
/// differently under float ops, which we never rewrite anyway).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ENode {
    /// Integer literal.
    Int(i64),
    /// Float literal, as raw bits.
    Float(u64),
    /// Scalar variable.
    Var(Ident),
    /// Unary operation.
    Unary(UnOp, ClassId),
    /// Binary operation.
    Bin(BinOp, ClassId, ClassId),
    /// Intrinsic call.
    Call(Intrinsic, Vec<ClassId>),
    /// Explicit cast.
    Cast(ScalarTy, ClassId),
    /// Array element read. Two refs are congruent only when the array
    /// and every index class coincide — the e-graph never speculates
    /// about memory.
    Ref(Ident, Vec<ClassId>),
}

impl ENode {
    /// Child classes, in syntactic order.
    pub fn children(&self) -> Vec<ClassId> {
        match self {
            ENode::Int(_) | ENode::Float(_) | ENode::Var(_) => Vec::new(),
            ENode::Unary(_, c) | ENode::Cast(_, c) => vec![*c],
            ENode::Bin(_, a, b) => vec![*a, *b],
            ENode::Call(_, cs) | ENode::Ref(_, cs) => cs.clone(),
        }
    }

    fn map_children(&self, mut f: impl FnMut(ClassId) -> ClassId) -> ENode {
        match self {
            ENode::Int(_) | ENode::Float(_) | ENode::Var(_) => self.clone(),
            ENode::Unary(op, c) => ENode::Unary(*op, f(*c)),
            ENode::Cast(ty, c) => ENode::Cast(*ty, f(*c)),
            ENode::Bin(op, a, b) => ENode::Bin(*op, f(*a), f(*b)),
            ENode::Call(i, cs) => ENode::Call(*i, cs.iter().map(|&c| f(c)).collect()),
            ENode::Ref(a, cs) => ENode::Ref(a.clone(), cs.iter().map(|&c| f(c)).collect()),
        }
    }
}

/// One equivalence class: its nodes in insertion order plus the scalar
/// type shared by every member (or `None` when typing could not be
/// established — such classes are never rewritten, only congruence-
/// closed).
#[derive(Debug, Clone)]
pub struct EClass {
    /// Member nodes, first-inserted first. Extraction's tie-break
    /// prefers earlier nodes, so the original program shape wins ties.
    pub nodes: Vec<ENode>,
    /// Scalar type of every member, when known.
    pub ty: Option<ScalarTy>,
}

/// Scalar/array typing context for the region being saturated,
/// mirroring sema's rules so class types agree with what codegen will
/// see.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    /// Scalar name → type (params, local decls, loop counters).
    pub scalars: HashMap<Ident, ScalarTy>,
    /// Array name → element type.
    pub arrays: HashMap<Ident, ScalarTy>,
}

/// The e-graph: union-find over classes plus a hash-cons memo.
#[derive(Debug, Clone, Default)]
pub struct EGraph {
    /// Typing context used to type new classes at `add` time.
    pub env: TypeEnv,
    classes: Vec<EClass>,
    parent: Vec<ClassId>,
    /// Hash-cons memo — **lookup only**, never iterated (iteration
    /// order would be nondeterministic).
    memo: HashMap<ENode, ClassId>,
    /// Bumped on every structural change (new class or real merge);
    /// the saturation loop compares it across rounds to detect a
    /// fixpoint.
    version: u64,
}

impl EGraph {
    /// An empty e-graph over the given typing context.
    pub fn new(env: TypeEnv) -> Self {
        EGraph { env, ..Default::default() }
    }

    /// Canonical class for `id`.
    pub fn find(&self, mut id: ClassId) -> ClassId {
        while self.parent[id as usize] != id {
            id = self.parent[id as usize];
        }
        id
    }

    /// Total ids ever allocated (canonical or not).
    pub fn num_ids(&self) -> usize {
        self.classes.len()
    }

    /// Number of live (canonical) classes.
    pub fn n_classes(&self) -> usize {
        (0..self.classes.len() as ClassId).filter(|&i| self.find(i) == i).count()
    }

    /// Number of distinct e-nodes (hash-cons entries).
    pub fn n_nodes(&self) -> usize {
        self.memo.len()
    }

    /// Structural version counter (see field doc).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Canonical class ids, ascending — the deterministic iteration
    /// order for rules and extraction.
    pub fn canonical_ids(&self) -> Vec<ClassId> {
        (0..self.classes.len() as ClassId).filter(|&i| self.find(i) == i).collect()
    }

    /// Nodes of class `id` (callers should pass a canonical id; a
    /// merged-away id has an empty list).
    pub fn nodes(&self, id: ClassId) -> &[ENode] {
        &self.classes[id as usize].nodes
    }

    /// Scalar type of class `id`, when established.
    pub fn ty(&self, id: ClassId) -> Option<ScalarTy> {
        self.classes[self.find(id) as usize].ty
    }

    /// The integer constant this class is known to equal, if any
    /// (first `Int` member in insertion order).
    pub fn const_of(&self, id: ClassId) -> Option<i64> {
        self.classes[self.find(id) as usize].nodes.iter().find_map(|n| match n {
            ENode::Int(v) => Some(*v),
            _ => None,
        })
    }

    fn canonicalize(&self, node: &ENode) -> ENode {
        node.map_children(|c| self.find(c))
    }

    fn type_of_node(&self, node: &ENode) -> Option<ScalarTy> {
        match node {
            ENode::Int(_) => Some(ScalarTy::I32),
            ENode::Float(_) => Some(ScalarTy::F64),
            ENode::Var(v) => self.env.scalars.get(v).copied(),
            ENode::Unary(UnOp::Neg, c) => self.ty(*c),
            ENode::Unary(UnOp::Not, _) => Some(ScalarTy::I32),
            ENode::Bin(op, a, b) => {
                if op.is_relational() {
                    Some(ScalarTy::I32)
                } else {
                    Some(self.ty(*a)?.unify(self.ty(*b)?))
                }
            }
            ENode::Call(i, args) => {
                // Mirror sema: min/max/abs over all-int arguments stay
                // integral; everything else unifies from `float` up.
                let mut tys = Vec::with_capacity(args.len());
                for &a in args {
                    tys.push(self.ty(a)?);
                }
                let all_int = tys.iter().all(|t| t.is_int());
                if matches!(i, Intrinsic::Min | Intrinsic::Max | Intrinsic::Abs) && all_int {
                    tys.into_iter().reduce(ScalarTy::unify)
                } else {
                    Some(tys.into_iter().fold(ScalarTy::F32, ScalarTy::unify))
                }
            }
            ENode::Cast(ty, _) => Some(*ty),
            ENode::Ref(a, _) => self.env.arrays.get(a).copied(),
        }
    }

    /// Hash-cons `node` into the graph, returning its class.
    pub fn add(&mut self, node: ENode) -> ClassId {
        let node = self.canonicalize(&node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find(id);
        }
        let id = self.classes.len() as ClassId;
        let ty = self.type_of_node(&node);
        self.classes.push(EClass { nodes: vec![node.clone()], ty });
        self.parent.push(id);
        self.memo.insert(node, id);
        self.version += 1;
        id
    }

    /// Add a whole expression tree, returning the root class.
    pub fn add_expr(&mut self, e: &Expr) -> ClassId {
        match e {
            Expr::IntLit(v) => self.add(ENode::Int(*v)),
            Expr::FloatLit(v) => self.add(ENode::Float(v.to_bits())),
            Expr::Var(v) => self.add(ENode::Var(v.clone())),
            Expr::Unary(op, inner) => {
                let c = self.add_expr(inner);
                self.add(ENode::Unary(*op, c))
            }
            Expr::Binary(op, l, r) => {
                let a = self.add_expr(l);
                let b = self.add_expr(r);
                self.add(ENode::Bin(*op, a, b))
            }
            Expr::Call(i, args) => {
                let cs = args.iter().map(|a| self.add_expr(a)).collect();
                self.add(ENode::Call(*i, cs))
            }
            Expr::Cast(ty, inner) => {
                let c = self.add_expr(inner);
                self.add(ENode::Cast(*ty, c))
            }
            Expr::ArrayRef(a) => {
                let cs = a.indices.iter().map(|ix| self.add_expr(ix)).collect();
                self.add(ENode::Ref(a.array.clone(), cs))
            }
        }
    }

    /// Merge two classes. The lower canonical id survives (keeps merge
    /// order deterministic and extraction stable).
    pub fn union(&mut self, a: ClassId, b: ClassId) -> ClassId {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return a;
        }
        let (keep, drop) = if a < b { (a, b) } else { (b, a) };
        self.parent[drop as usize] = keep;
        let moved = std::mem::take(&mut self.classes[drop as usize].nodes);
        self.classes[keep as usize].nodes.extend(moved);
        if self.classes[keep as usize].ty.is_none() {
            self.classes[keep as usize].ty = self.classes[drop as usize].ty;
        }
        self.version += 1;
        keep
    }

    /// Restore the congruence invariant: after merges, re-canonicalize
    /// every node and merge classes that now contain identical nodes,
    /// to a fixpoint. Deduplicates node lists (keeping first
    /// occurrence) along the way.
    pub fn rebuild(&mut self) {
        loop {
            let mut unions: Vec<(ClassId, ClassId)> = Vec::new();
            let mut new_memo: HashMap<ENode, ClassId> = HashMap::with_capacity(self.memo.len());
            for id in self.canonical_ids() {
                let nodes = std::mem::take(&mut self.classes[id as usize].nodes);
                let mut kept: Vec<ENode> = Vec::with_capacity(nodes.len());
                for n in nodes {
                    let n = self.canonicalize(&n);
                    if kept.contains(&n) {
                        continue;
                    }
                    match new_memo.get(&n) {
                        Some(&other) if self.find(other) != id => unions.push((id, other)),
                        _ => {
                            new_memo.insert(n.clone(), id);
                        }
                    }
                    kept.push(n);
                }
                self.classes[id as usize].nodes = kept;
            }
            self.memo = new_memo;
            if unions.is_empty() {
                break;
            }
            for (a, b) in unions {
                self.union(a, b);
            }
        }
    }
}

/// Everything the driver wants to know about one region's saturation.
#[derive(Debug, Clone)]
pub struct RegionSaturation {
    /// Rounds run, class/node counts, and why saturation stopped.
    pub stats: SaturateStats,
    /// Summed extraction-weight cost of the original root expressions.
    pub cost_before: u64,
    /// Summed class cost of the extracted roots.
    pub cost_after: u64,
}

impl RegionSaturation {
    /// Fold another region's outcome into this one (per-function
    /// aggregate for the trace span).
    pub fn absorb(&mut self, other: &RegionSaturation) {
        self.stats.rounds = self.stats.rounds.max(other.stats.rounds);
        self.stats.e_classes += other.stats.e_classes;
        self.stats.e_nodes += other.stats.e_nodes;
        if other.stats.stop == StopReason::RoundCap {
            self.stats.stop = StopReason::RoundCap;
        }
        self.cost_before += other.cost_before;
        self.cost_after += other.cost_after;
    }

    /// A zero outcome to aggregate into.
    pub fn empty() -> Self {
        RegionSaturation {
            stats: SaturateStats {
                rounds: 0,
                e_classes: 0,
                e_nodes: 0,
                stop: StopReason::Saturated,
            },
            cost_before: 0,
            cost_after: 0,
        }
    }
}

/// Visit every expression the saturation phase owns, in a fixed order:
/// assignment targets' subscript indices, assignment right-hand sides,
/// and scalar-declaration initializers. Loop headers and `if`
/// conditions are deliberately *not* visited — rewriting them would
/// disturb the loop-mapping analysis for zero register benefit.
///
/// Assignment-target subscripts arrive as bare roots (an `LValue`
/// holds raw index expressions, not an [`Expr::ArrayRef`]), so the
/// callback also receives the owning array for those — the narrowing
/// pre-rewrite needs it.
fn for_each_root(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Expr, Option<&Ident>)) {
    for s in stmts {
        match s {
            Stmt::DeclScalar { init: Some(e), .. } => f(e, None),
            Stmt::DeclScalar { .. } => {}
            Stmt::Assign { lhs, rhs, .. } => {
                if let LValue::ArrayRef(a) = lhs {
                    let owner = a.array.clone();
                    for ix in &mut a.indices {
                        f(ix, Some(&owner));
                    }
                }
                f(rhs, None);
            }
            Stmt::For(l) => for_each_root(&mut l.body, f),
            Stmt::If { then_body, else_body, .. } => {
                for_each_root(then_body, f);
                for_each_root(else_body, f);
            }
            Stmt::Block(b) => for_each_root(b, f),
            Stmt::Region(r) => for_each_root(&mut r.body, f),
        }
    }
}

fn collect_scalar_tys(stmts: &[Stmt], out: &mut HashMap<Ident, ScalarTy>) {
    for s in stmts {
        match s {
            Stmt::DeclScalar { name, ty, .. } => {
                out.insert(name.clone(), *ty);
            }
            Stmt::For(l) => {
                // Induction variables are always `int`.
                out.insert(l.var.clone(), ScalarTy::I32);
                collect_scalar_tys(&l.body, out);
            }
            Stmt::If { then_body, else_body, .. } => {
                collect_scalar_tys(then_body, out);
                collect_scalar_tys(else_body, out);
            }
            Stmt::Block(b) => collect_scalar_tys(b, out),
            Stmt::Region(r) => collect_scalar_tys(&r.body, out),
            Stmt::Assign { .. } => {}
        }
    }
}

/// Build the typing context for a region of `f`, plus the set of
/// arrays whose subscripts may be narrowed to 32-bit arithmetic —
/// exactly the arrays codegen gives a 32-bit offset: provably-small
/// static arrays, and `small`-clause members when the clause is
/// honored.
fn region_env(f: &Function, region: &OffloadRegion, honor_small: bool) -> (TypeEnv, HashSet<Ident>) {
    let mut env = TypeEnv::default();
    let mut narrow = HashSet::new();
    for p in &f.params {
        match p {
            safara_ir::Param::Scalar { name, ty } => {
                env.scalars.insert(name.clone(), *ty);
            }
            safara_ir::Param::Array { name, ty, .. } => {
                env.arrays.insert(name.clone(), ty.elem);
                let statically_small = ty
                    .static_len()
                    .map(|n| {
                        n.checked_mul(ty.elem.size_bytes() as i64).is_some_and(|b| b < (1 << 31))
                    })
                    .unwrap_or(false);
                if statically_small
                    || (honor_small && region.directive.clauses.is_small(name))
                {
                    narrow.insert(name.clone());
                }
            }
        }
    }
    collect_scalar_tys(&f.body, &mut env.scalars);
    (env, narrow)
}

/// Saturate one offload region in place: populate an e-graph from its
/// expressions (after the guarded subscript-narrowing pre-rewrite),
/// run the rule set to saturation or the configured caps, and write
/// the cheapest equivalent form of each expression back into the
/// region body.
///
/// Errors only when the e-node cap is breached (pathological blowup);
/// the round cap is a benign stop recorded in the stats.
pub fn saturate_region(
    f: &Function,
    region: &mut OffloadRegion,
    honor_small: bool,
    cfg: &SaturateConfig,
) -> Result<RegionSaturation, SaturateError> {
    let (env, narrow) = region_env(f, region, honor_small);
    let mut eg = EGraph::new(env.clone());
    let mut roots: Vec<ClassId> = Vec::new();
    let mut cost_before = 0u64;
    for_each_root(&mut region.body, &mut |e, owner| {
        cost_before += expr_cost(e);
        let mut narrowed = narrow_subscripts(e, &env, &narrow);
        if owner.is_some_and(|arr| narrow.contains(arr)) {
            narrowed = rewrite::narrow_index(&narrowed, &env);
        }
        *e = narrowed;
        roots.push(eg.add_expr(e));
    });

    let stats = saturate(&mut eg, cfg)?;

    let costs = class_costs(&eg);
    let mut cost_after = 0u64;
    let mut memo = HashMap::new();
    let mut i = 0usize;
    for_each_root(&mut region.body, &mut |e, _owner| {
        let root = eg.find(roots[i]);
        cost_after += costs[root as usize];
        *e = extract_class(&eg, &costs, root, &mut memo);
        i += 1;
    });

    Ok(RegionSaturation { stats, cost_before, cost_after })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_env(vars: &[&str]) -> TypeEnv {
        let mut env = TypeEnv::default();
        for v in vars {
            env.scalars.insert(Ident::new(v), ScalarTy::I32);
        }
        env
    }

    #[test]
    fn hash_consing_shares_structurally_equal_exprs() {
        let mut eg = EGraph::new(int_env(&["i", "j"]));
        let e = Expr::bin(BinOp::Add, Expr::var("i"), Expr::var("j"));
        let a = eg.add_expr(&e);
        let b = eg.add_expr(&e);
        assert_eq!(a, b, "identical trees must land in the same class");
        // (i + j) * k reuses the i + j class.
        let n_before = eg.n_nodes();
        let e2 = Expr::bin(BinOp::Mul, e.clone(), Expr::var("i"));
        eg.add_expr(&e2);
        assert_eq!(eg.n_nodes(), n_before + 1, "only the Mul node is new");
    }

    #[test]
    fn congruence_closure_merges_parents_after_child_union() {
        // a[i] and a[j] are distinct until i ≡ j, then congruence must
        // merge them during rebuild.
        let mut env = int_env(&["i", "j"]);
        env.arrays.insert(Ident::new("a"), ScalarTy::F32);
        let mut eg = EGraph::new(env);
        let i = eg.add(ENode::Var(Ident::new("i")));
        let j = eg.add(ENode::Var(Ident::new("j")));
        let ai = eg.add(ENode::Ref(Ident::new("a"), vec![i]));
        let aj = eg.add(ENode::Ref(Ident::new("a"), vec![j]));
        assert_ne!(eg.find(ai), eg.find(aj));
        eg.union(i, j);
        eg.rebuild();
        assert_eq!(eg.find(ai), eg.find(aj), "congruent refs must merge");
        // And the merged class deduplicates the now-identical nodes.
        assert_eq!(eg.nodes(eg.find(ai)).len(), 1);
    }

    #[test]
    fn congruence_closure_cascades_transitively() {
        // f(f(i)) vs f(f(j)): one leaf union must cascade two levels.
        let mut eg = EGraph::new(int_env(&["i", "j"]));
        let i = eg.add(ENode::Var(Ident::new("i")));
        let j = eg.add(ENode::Var(Ident::new("j")));
        let ni = eg.add(ENode::Unary(UnOp::Neg, i));
        let nj = eg.add(ENode::Unary(UnOp::Neg, j));
        let nni = eg.add(ENode::Unary(UnOp::Neg, ni));
        let nnj = eg.add(ENode::Unary(UnOp::Neg, nj));
        eg.union(i, j);
        eg.rebuild();
        assert_eq!(eg.find(ni), eg.find(nj));
        assert_eq!(eg.find(nni), eg.find(nnj));
    }

    #[test]
    fn class_types_mirror_sema() {
        let mut env = int_env(&["i"]);
        env.scalars.insert(Ident::new("x"), ScalarTy::F32);
        env.arrays.insert(Ident::new("a"), ScalarTy::F64);
        let mut eg = EGraph::new(env);
        let i = eg.add(ENode::Var(Ident::new("i")));
        let x = eg.add(ENode::Var(Ident::new("x")));
        let k = eg.add(ENode::Int(2));
        assert_eq!(eg.ty(i), Some(ScalarTy::I32));
        let mix = eg.add(ENode::Bin(BinOp::Mul, i, x));
        assert_eq!(eg.ty(mix), Some(ScalarTy::F32), "int*float unifies to float");
        let rel = eg.add(ENode::Bin(BinOp::Lt, x, x));
        assert_eq!(eg.ty(rel), Some(ScalarTy::I32), "relational results are int");
        let wide = eg.add(ENode::Cast(ScalarTy::I64, i));
        assert_eq!(eg.ty(wide), Some(ScalarTy::I64));
        let shifted = eg.add(ENode::Bin(BinOp::Shl, i, k));
        assert_eq!(eg.ty(shifted), Some(ScalarTy::I32));
        let a = eg.add(ENode::Ref(Ident::new("a"), vec![i]));
        assert_eq!(eg.ty(a), Some(ScalarTy::F64));
    }

    #[test]
    fn union_keeps_lower_id_and_merges_nodes() {
        let mut eg = EGraph::new(int_env(&["i"]));
        let i = eg.add(ENode::Var(Ident::new("i")));
        let z = eg.add(ENode::Int(0));
        let sum = eg.add(ENode::Bin(BinOp::Add, i, z));
        let keep = eg.union(sum, i);
        assert_eq!(keep, eg.find(i), "lower id is canonical");
        assert_eq!(eg.find(sum), keep);
        assert!(eg.nodes(keep).iter().any(|n| matches!(n, ENode::Bin(BinOp::Add, _, _))));
        assert_eq!(eg.const_of(z), Some(0));
    }
}
