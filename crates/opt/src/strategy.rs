//! End-to-end scalar-replacement strategies.
//!
//! * [`safara_pass`] — one round of SAFARA's transformation for a given
//!   register budget: analyze the region, select candidates under the
//!   `count × latency` model, apply them. The *iterative feedback* around
//!   this pass (recompile → PTXAS-sim → recompute budget → repeat) lives
//!   in `safara-core`, which owns the back-end.
//! * [`carr_kennedy_pass`] — the classical algorithm the paper uses as
//!   its foil: reuse is harvested across iterations of *any* loop,
//!   including parallelized ones, whose loops are then sequentialized
//!   (Fig. 3 → Fig. 4). Register pressure is moderated by reference
//!   count only.

use crate::select::{
    group_elem_ty, select_candidates, OptGoal, SelectionConfig, ThroughputContext,
};
use crate::transform::{apply_group, TempNamer};
use safara_analysis::cost::CostModel;
use safara_analysis::memspace::classify_arrays;
use safara_analysis::region::RegionInfo;
use safara_analysis::reuse::{find_reuse_groups, ReuseKind};
use safara_ir::*;

/// What a strategy pass did to a region.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SrOutcome {
    /// Temporaries introduced.
    pub temps_added: u32,
    /// Groups applied.
    pub groups_applied: usize,
    /// Loops that had to be sequentialized (Carr–Kennedy only).
    pub sequentialized: Vec<Ident>,
    /// Estimated loads saved per thread (sum over applied groups).
    pub est_loads_saved: u64,
}

/// One SAFARA round on `region` (mutates it in place).
///
/// `budget_regs` is the number of registers the feedback loop computed as
/// available; `cost_model` is latency-aware by default and count-only for
/// the ablation.
pub fn safara_pass(
    func: &Function,
    region: &mut OffloadRegion,
    budget_regs: u32,
    cost_model: &CostModel,
    namer: &mut TempNamer,
) -> SrOutcome {
    safara_pass_with(func, region, budget_regs, cost_model, OptGoal::MinRegisters, None, namer)
}

/// [`safara_pass`] with an explicit optimization goal. Under
/// [`OptGoal::MaxThroughput`] the `throughput` context supplies the
/// occupancy oracle (device + planned block size + current register use)
/// consulted during admission; without it the goal degrades to
/// `MinRegisters`.
pub fn safara_pass_with(
    func: &Function,
    region: &mut OffloadRegion,
    budget_regs: u32,
    cost_model: &CostModel,
    goal: OptGoal,
    throughput: Option<ThroughputContext>,
    namer: &mut TempNamer,
) -> SrOutcome {
    let snapshot = region.clone();
    let info = RegionInfo::analyze(&snapshot);
    let usage = classify_arrays(&func.params, &snapshot);
    let groups = find_reuse_groups(&snapshot, &info);
    let config = SelectionConfig {
        cost_model: cost_model.clone(),
        goal,
        throughput,
        ..Default::default()
    };
    let picked = select_candidates(&groups, &info, &usage, budget_regs, &config);
    let mut outcome = SrOutcome::default();
    for c in &picked {
        let elem = group_elem_ty(&usage, &c.group);
        let added = apply_group(&mut region.body, &c.group, elem, namer, &info);
        if added > 0 {
            outcome.temps_added += added;
            outcome.groups_applied += 1;
            outcome.est_loads_saved += c.group.loads_saved();
        }
    }
    outcome
}

/// The classical Carr–Kennedy pass: pretend every loop is sequential so
/// inter-iteration reuse is harvested everywhere, then mark any
/// parallelized loop that received rotating temporaries as `seq` — the
/// transformation introduced loop-carried dependences, so the loop can no
/// longer be parallelized (§III-A.1).
pub fn carr_kennedy_pass(
    func: &Function,
    region: &mut OffloadRegion,
    budget_regs: u32,
    namer: &mut TempNamer,
) -> SrOutcome {
    let snapshot = region.clone();
    // Doctor the region info: everything sequential.
    let mut info = RegionInfo::analyze(&snapshot);
    for l in &mut info.loops {
        l.mapped = None;
        l.sequential = true;
    }
    let usage = classify_arrays(&func.params, &snapshot);
    let groups = find_reuse_groups_with_info(&snapshot, &info);
    let config = SelectionConfig { cost_model: CostModel::count_only(), ..Default::default() };
    let real_info = RegionInfo::analyze(&snapshot);
    let picked = select_candidates(&groups, &real_info, &usage, budget_regs, &config);

    let mut outcome = SrOutcome::default();
    for c in &picked {
        let elem = group_elem_ty(&usage, &c.group);
        // Apply with the *doctored* info: the groups' loop-instance ids
        // were assigned under it.
        let added = apply_group(&mut region.body, &c.group, elem, namer, &info);
        if added > 0 {
            outcome.temps_added += added;
            outcome.groups_applied += 1;
            outcome.est_loads_saved += c.group.loads_saved();
            // If the carrying loop was parallelized, it no longer can be.
            if let ReuseKind::Inter { var, .. } = &c.group.kind {
                if real_info.loop_of(var).is_some_and(|l| l.mapped.is_some())
                    && !outcome.sequentialized.contains(var)
                {
                    outcome.sequentialized.push(var.clone());
                }
            }
        }
    }
    for var in &outcome.sequentialized {
        sequentialize(&mut region.body, var);
    }
    outcome
}

/// Re-run the reuse analysis against a doctored `RegionInfo` (used by the
/// Carr–Kennedy strategy to treat parallel loops as sequential).
fn find_reuse_groups_with_info(
    region: &OffloadRegion,
    info: &RegionInfo,
) -> Vec<safara_analysis::reuse::ReuseGroup> {
    find_reuse_groups_impl(region, info)
}

fn find_reuse_groups_impl(
    region: &OffloadRegion,
    info: &RegionInfo,
) -> Vec<safara_analysis::reuse::ReuseGroup> {
    safara_analysis::reuse::find_reuse_groups(region, info)
}

fn sequentialize(stmts: &mut [Stmt], var: &Ident) {
    for s in stmts {
        match s {
            Stmt::For(f) => {
                if &f.var == var {
                    f.directive = Some(LoopDirective::seq());
                }
                sequentialize(&mut f.body, var);
            }
            Stmt::If { then_body, else_body, .. } => {
                sequentialize(then_body, var);
                sequentialize(else_body, var);
            }
            Stmt::Block(b) => sequentialize(b, var),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_ir::parse_program;
    use safara_ir::printer::print_function;

    fn run_pass(
        src: &str,
        f: impl FnOnce(&Function, &mut OffloadRegion, &mut TempNamer) -> SrOutcome,
    ) -> (SrOutcome, String) {
        let mut p = parse_program(src).unwrap();
        let func_snapshot = p.functions[0].clone();
        let mut namer = TempNamer::default();
        let mut outcome = SrOutcome::default();
        let mut f = Some(f);
        for s in &mut p.functions[0].body {
            if let Stmt::Region(r) = s {
                if let Some(f) = f.take() {
                    outcome = f(&func_snapshot, r, &mut namer);
                }
            }
        }
        let txt = print_function(&p.functions[0]);
        parse_program(&txt).unwrap_or_else(|e| panic!("invalid output: {e}\n{txt}"));
        (outcome, txt)
    }

    const FIG3: &str = r#"
    void fig3(int n, float a[1026], float b[1026]) {
      #pragma acc kernels
      {
        #pragma acc loop gang vector
        for (int i = 1; i <= n; i++) {
          a[i] = (b[i] + b[i + 1]) / 2.0;
        }
      }
    }"#;

    #[test]
    fn safara_leaves_fig3_parallel() {
        let (outcome, txt) = run_pass(FIG3, |f, r, n| {
            safara_pass(f, r, 255, &CostModel::default(), n)
        });
        assert_eq!(outcome.temps_added, 0);
        assert!(outcome.sequentialized.is_empty());
        assert!(txt.contains("gang vector"), "{txt}");
    }

    #[test]
    fn carr_kennedy_sequentializes_fig3() {
        let (outcome, txt) = run_pass(FIG3, |f, r, n| carr_kennedy_pass(f, r, 255, n));
        // CK harvests b[i]/b[i+1] as inter-iteration reuse and pays with
        // the loop's parallelism — the paper's Fig. 4.
        assert_eq!(outcome.sequentialized.len(), 1);
        assert_eq!(outcome.sequentialized[0].as_str(), "i");
        assert!(outcome.temps_added >= 2);
        assert!(txt.contains("seq"), "{txt}");
        assert!(txt.contains("__sr"), "{txt}");
    }

    const FIG5: &str = r#"
    void fig5(int jsize, int isize, float a[260][260], float b[260][260],
              float c[260], float d[260]) {
      #pragma acc kernels
      {
        #pragma acc loop gang vector
        for (int j = 1; j <= jsize; j++) {
          c[j] = b[j][0] + b[j][1];
          d[j] = c[j] * b[j][0];
          #pragma acc loop seq
          for (int i = 1; i <= isize; i++) {
            a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
          }
        }
      }
    }"#;

    #[test]
    fn safara_transforms_fig5_keeping_parallelism() {
        let (outcome, txt) = run_pass(FIG5, |f, r, n| {
            safara_pass(f, r, 255, &CostModel::default(), n)
        });
        assert!(outcome.temps_added >= 3, "{outcome:?}");
        assert!(outcome.sequentialized.is_empty());
        assert!(txt.contains("gang vector"), "{txt}");
        assert!(outcome.est_loads_saved > 0);
    }

    #[test]
    fn zero_budget_is_a_no_op() {
        let (outcome, txt) = run_pass(FIG5, |f, r, n| {
            safara_pass(f, r, 0, &CostModel::default(), n)
        });
        assert_eq!(outcome.temps_added, 0);
        assert!(!txt.contains("__sr"));
    }

    #[test]
    fn budget_of_three_picks_only_top_group() {
        let (outcome, _) = run_pass(FIG5, |f, r, n| {
            safara_pass(f, r, 3, &CostModel::default(), n)
        });
        // The b inter group costs exactly 3 temps; nothing else fits.
        assert_eq!(outcome.temps_added, 3);
        assert_eq!(outcome.groups_applied, 1);
    }
}
