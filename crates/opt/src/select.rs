//! Candidate selection under a register budget (§III-B.3).
//!
//! Given the reuse groups of a region and the number of registers the
//! feedback loop says are still available, pick the most beneficial
//! groups: sort by `benefit = loads_saved × latency(access class)`
//! descending and take greedily while the temporaries fit.
//!
//! Under [`OptGoal::MaxThroughput`] the greedy admission additionally
//! consults the device occupancy model: a candidate is admitted only if
//! the latency it removes outweighs the latency-hiding lost when its
//! temporaries push the kernel across a warp-allocation boundary
//! (registers/thread × threads/SM ≤ registers/SM). This is the
//! occupancy-aware refinement of the paper's count-saturating loop.

use safara_analysis::coalesce::classify_ref;
use safara_analysis::cost::{AccessClass, CostModel};
use safara_analysis::memspace::ArrayUsage;
use safara_analysis::region::RegionInfo;
use safara_analysis::reuse::ReuseGroup;
use safara_gpusim::DeviceConfig;
use safara_ir::{Ident, ScalarTy};
use std::collections::BTreeMap;

/// What the budgeted selection optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptGoal {
    /// The paper's policy: saturate the register budget — every
    /// above-threshold candidate that fits is admitted.
    #[default]
    MinRegisters,
    /// Occupancy-aware policy: admit a candidate only if the predicted
    /// memory time (latency pool ÷ resident warps) improves, so register
    /// pressure is traded against latency hiding instead of ignored.
    MaxThroughput,
}

/// Device-side facts the `MaxThroughput` admission test needs.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputContext {
    /// The occupancy oracle.
    pub device: DeviceConfig,
    /// Planned threads per block (the `launch_bounds` T when declared,
    /// otherwise the runtime's default geometry).
    pub threads_per_block: u32,
    /// Hardware registers the kernel already uses (ptxas feedback).
    pub regs_in_use: u32,
}

/// Selection policy knobs.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// The cost model (latency-aware by default; count-only for the
    /// Carr–Kennedy ablation).
    pub cost_model: CostModel,
    /// Hardware registers each temporary of a 32-bit element costs.
    /// (64-bit elements cost twice this.)
    pub regs_per_temp: u32,
    /// Groups whose estimated benefit is below this threshold are never
    /// selected (avoids burning registers on single-hit reuse).
    pub min_benefit: u64,
    /// What admission optimizes.
    pub goal: OptGoal,
    /// Required when `goal` is [`OptGoal::MaxThroughput`]; ignored (and
    /// the goal falls back to `MinRegisters`) when absent.
    pub throughput: Option<ThroughputContext>,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            cost_model: CostModel::default(),
            regs_per_temp: 1,
            min_benefit: 1,
            goal: OptGoal::MinRegisters,
            throughput: None,
        }
    }
}

/// A scored candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The group.
    pub group: ReuseGroup,
    /// Its access class (drives the latency term).
    pub class: AccessClass,
    /// Benefit under the model.
    pub benefit: u64,
    /// Hardware registers its temporaries need.
    pub reg_cost: u32,
}

/// Score and select groups within `budget_regs` hardware registers.
/// Returns the chosen candidates in application order (highest benefit
/// first) — the order the paper's iterative loop would admit them.
pub fn select_candidates(
    groups: &[ReuseGroup],
    info: &RegionInfo,
    usage: &BTreeMap<Ident, ArrayUsage>,
    budget_regs: u32,
    config: &SelectionConfig,
) -> Vec<Candidate> {
    let mut cands: Vec<Candidate> = groups
        .iter()
        .filter_map(|g| {
            let u = usage.get(&g.array)?;
            let coalesce = classify_ref(&g.classes[0].r, info);
            let class = AccessClass::of(u.space, coalesce);
            let benefit = config.cost_model.benefit(g, class);
            let width = if u.ty.elem.size_bytes() == 8 { 2 } else { 1 };
            let reg_cost = g.temps_needed() * config.regs_per_temp * width;
            Some(Candidate { group: g.clone(), class, benefit, reg_cost })
        })
        .filter(|c| c.benefit >= config.min_benefit)
        .collect();
    cands.sort_by(|a, b| b.benefit.cmp(&a.benefit).then(a.reg_cost.cmp(&b.reg_cost)));
    match (config.goal, &config.throughput) {
        (OptGoal::MaxThroughput, Some(ctx)) => {
            select_for_throughput(cands, budget_regs, config, ctx)
        }
        _ => {
            let mut used = 0u32;
            let mut out = Vec::new();
            for c in cands {
                if used + c.reg_cost <= budget_regs {
                    used += c.reg_cost;
                    out.push(c);
                }
            }
            out
        }
    }
}

/// Occupancy-aware greedy admission: walk the benefit-sorted candidates
/// tracking an estimated per-thread memory-latency pool `P` and the
/// kernel's register count `r`; admit a candidate (benefit `b`, cost
/// `Δ`) only if `(P − b) / W(r + Δ) < P / W(r)` where `W` is the
/// device's resident-warps function — i.e. only if the removed latency
/// outweighs any latency-hiding lost to reduced occupancy. When the
/// candidate does not cross a warp-allocation boundary `W` is unchanged
/// and the test degenerates to `b > 0`, reproducing `MinRegisters`.
fn select_for_throughput(
    cands: Vec<Candidate>,
    budget_regs: u32,
    config: &SelectionConfig,
    ctx: &ThroughputContext,
) -> Vec<Candidate> {
    let warps = |r: u32| -> u128 {
        ctx.device.occupancy(r.max(1), ctx.threads_per_block).active_warps_per_sm as u128
    };
    // Estimated latency pool: total dynamic reads of every candidate
    // group × its class latency (same latency scale the benefits use).
    // Traffic outside reuse groups is not replaceable and cancels from
    // both sides of the comparison, so it is omitted.
    let lat = |class: AccessClass| -> u64 {
        if config.cost_model.use_latency {
            config.cost_model.latencies.latency(class)
        } else {
            1
        }
    };
    let mut pool: u128 = cands
        .iter()
        .map(|c| {
            let reads: u64 =
                c.group.classes.iter().map(|rc| rc.reads as u64 * rc.weight).sum();
            reads as u128 * lat(c.class) as u128
        })
        .sum::<u128>()
        .max(1);
    let mut regs = ctx.regs_in_use.max(1);
    let mut used = 0u32;
    let mut out = Vec::new();
    for c in cands {
        if used + c.reg_cost > budget_regs {
            continue;
        }
        let w_now = warps(regs);
        let w_after = warps(regs + c.reg_cost);
        if w_now == 0 || w_after == 0 {
            continue;
        }
        let b = (c.benefit as u128).min(pool);
        // time_after < time_now  ⟺  (P − b)·W(r) < P·W(r + Δ)
        if (pool - b) * w_now < pool * w_after {
            used += c.reg_cost;
            regs += c.reg_cost;
            pool -= b;
            out.push(c);
        }
    }
    out
}

/// Element type of a group's array (needed by the transformation).
pub fn group_elem_ty(usage: &BTreeMap<Ident, ArrayUsage>, group: &ReuseGroup) -> ScalarTy {
    usage.get(&group.array).map(|u| u.ty.elem).unwrap_or(ScalarTy::F32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_analysis::memspace::classify_arrays;
    use safara_analysis::reuse::find_reuse_groups;
    use safara_ir::parse_program;

    fn setup(src: &str) -> (Vec<ReuseGroup>, RegionInfo, BTreeMap<Ident, ArrayUsage>) {
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        let region = f.regions()[0].clone();
        let info = RegionInfo::analyze(&region);
        let usage = classify_arrays(&f.params, &region);
        let groups = find_reuse_groups(&region, &info);
        (groups, info, usage)
    }

    const FIG5: &str = r#"
    void fig5(int jsize, int isize, float a[260][260], float b[260][260],
              float c[260], float d[260]) {
      #pragma acc kernels
      {
        #pragma acc loop gang vector
        for (int j = 1; j <= jsize; j++) {
          c[j] = b[j][0] + b[j][1];
          d[j] = c[j] * b[j][0];
          #pragma acc loop seq
          for (int i = 1; i <= isize; i++) {
            a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
          }
        }
      }
    }"#;

    #[test]
    fn uncoalesced_b_ranks_first() {
        // The paper's §II-A.2 argument: b is uncoalesced (higher latency)
        // so replacing b beats replacing a even though a has more refs.
        let (groups, info, usage) = setup(FIG5);
        let picked = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        assert!(!picked.is_empty());
        assert_eq!(picked[0].group.array.as_str(), "b");
        assert!(matches!(
            picked[0].class,
            AccessClass::GlobalUncoalesced | AccessClass::ReadOnlyUncoalesced
        ));
    }

    #[test]
    fn budget_limits_selection() {
        let (groups, info, usage) = setup(FIG5);
        let all = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let one = select_candidates(&groups, &info, &usage, 3, &SelectionConfig::default());
        assert!(one.len() < all.len());
        let zero = select_candidates(&groups, &info, &usage, 0, &SelectionConfig::default());
        assert!(zero.is_empty());
        // The constrained pick must still be the top-benefit group.
        assert_eq!(one[0].group.array, all[0].group.array);
    }

    #[test]
    fn count_only_model_changes_ranking() {
        let (groups, info, usage) = setup(FIG5);
        let latency_aware =
            select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let count_only = select_candidates(
            &groups,
            &info,
            &usage,
            255,
            &SelectionConfig { cost_model: CostModel::count_only(), ..Default::default() },
        );
        // Both select something; the orderings need not agree, but the
        // latency-aware one must put an uncoalesced group first.
        assert!(!latency_aware.is_empty() && !count_only.is_empty());
        assert!(matches!(
            latency_aware[0].class,
            AccessClass::GlobalUncoalesced | AccessClass::ReadOnlyUncoalesced
        ));
    }

    #[test]
    fn throughput_goal_matches_min_registers_away_from_boundaries() {
        // regs_in_use = 17 with 128-thread blocks: warp allocation is
        // rounded to 256 regs (8 regs/thread), so the next boundary is at
        // 24 — the candidates' few temporaries never cross it and the
        // occupancy-aware admission must degenerate to the paper's.
        let (groups, info, usage) = setup(FIG5);
        let base = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let ctx = ThroughputContext {
            device: DeviceConfig::k20xm(),
            threads_per_block: 128,
            regs_in_use: 17,
        };
        let cfg = SelectionConfig {
            goal: OptGoal::MaxThroughput,
            throughput: Some(ctx),
            ..Default::default()
        };
        let thr = select_candidates(&groups, &info, &usage, 255, &cfg);
        let arrays = |v: &[Candidate]| -> Vec<String> {
            v.iter().map(|c| c.group.array.as_str().to_string()).collect()
        };
        assert_eq!(arrays(&base), arrays(&thr));
    }

    #[test]
    fn throughput_goal_stops_at_an_occupancy_cliff() {
        // 1024-thread blocks at 63 regs/thread sit exactly on the edge:
        // 64 regs still fits one resident block, 65 regs fits none. The
        // count-saturating goal happily burns past the cliff; the
        // throughput goal must stop at it.
        let (groups, info, usage) = setup(FIG5);
        let base = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let base_cost: u32 = base.iter().map(|c| c.reg_cost).sum();
        assert!(base_cost > 1, "fixture must want more than one register");
        let ctx = ThroughputContext {
            device: DeviceConfig::k20xm(),
            threads_per_block: 1024,
            regs_in_use: 63,
        };
        let cfg = SelectionConfig {
            goal: OptGoal::MaxThroughput,
            throughput: Some(ctx),
            ..Default::default()
        };
        let thr = select_candidates(&groups, &info, &usage, 255, &cfg);
        let thr_cost: u32 = thr.iter().map(|c| c.reg_cost).sum();
        assert!(thr_cost <= 1, "must not launch-kill the kernel: cost {thr_cost}");
        assert!(thr_cost < base_cost);
    }

    #[test]
    fn throughput_goal_without_context_falls_back() {
        let (groups, info, usage) = setup(FIG5);
        let base = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let cfg = SelectionConfig { goal: OptGoal::MaxThroughput, ..Default::default() };
        let thr = select_candidates(&groups, &info, &usage, 255, &cfg);
        assert_eq!(base.len(), thr.len());
    }

    #[test]
    fn f64_groups_cost_double() {
        let src = r#"
        void f(int n, const double s[n], double a[n][100]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              #pragma acc loop seq
              for (int k = 0; k < 100; k++) {
                a[i][k] = a[i][k] + s[i];
              }
            }
          }
        }"#;
        let (groups, info, usage) = setup(src);
        let picked = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let s = picked.iter().find(|c| c.group.array.as_str() == "s").expect("s selected");
        assert_eq!(s.reg_cost, 2);
    }
}
