//! Candidate selection under a register budget (§III-B.3).
//!
//! Given the reuse groups of a region and the number of registers the
//! feedback loop says are still available, pick the most beneficial
//! groups: sort by `benefit = loads_saved × latency(access class)`
//! descending and take greedily while the temporaries fit.

use safara_analysis::coalesce::classify_ref;
use safara_analysis::cost::{AccessClass, CostModel};
use safara_analysis::memspace::ArrayUsage;
use safara_analysis::region::RegionInfo;
use safara_analysis::reuse::ReuseGroup;
use safara_ir::{Ident, ScalarTy};
use std::collections::BTreeMap;

/// Selection policy knobs.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// The cost model (latency-aware by default; count-only for the
    /// Carr–Kennedy ablation).
    pub cost_model: CostModel,
    /// Hardware registers each temporary of a 32-bit element costs.
    /// (64-bit elements cost twice this.)
    pub regs_per_temp: u32,
    /// Groups whose estimated benefit is below this threshold are never
    /// selected (avoids burning registers on single-hit reuse).
    pub min_benefit: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig { cost_model: CostModel::default(), regs_per_temp: 1, min_benefit: 1 }
    }
}

/// A scored candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The group.
    pub group: ReuseGroup,
    /// Its access class (drives the latency term).
    pub class: AccessClass,
    /// Benefit under the model.
    pub benefit: u64,
    /// Hardware registers its temporaries need.
    pub reg_cost: u32,
}

/// Score and select groups within `budget_regs` hardware registers.
/// Returns the chosen candidates in application order (highest benefit
/// first) — the order the paper's iterative loop would admit them.
pub fn select_candidates(
    groups: &[ReuseGroup],
    info: &RegionInfo,
    usage: &BTreeMap<Ident, ArrayUsage>,
    budget_regs: u32,
    config: &SelectionConfig,
) -> Vec<Candidate> {
    let mut cands: Vec<Candidate> = groups
        .iter()
        .filter_map(|g| {
            let u = usage.get(&g.array)?;
            let coalesce = classify_ref(&g.classes[0].r, info);
            let class = AccessClass::of(u.space, coalesce);
            let benefit = config.cost_model.benefit(g, class);
            let width = if u.ty.elem.size_bytes() == 8 { 2 } else { 1 };
            let reg_cost = g.temps_needed() * config.regs_per_temp * width;
            Some(Candidate { group: g.clone(), class, benefit, reg_cost })
        })
        .filter(|c| c.benefit >= config.min_benefit)
        .collect();
    cands.sort_by(|a, b| b.benefit.cmp(&a.benefit).then(a.reg_cost.cmp(&b.reg_cost)));
    let mut used = 0u32;
    let mut out = Vec::new();
    for c in cands {
        if used + c.reg_cost <= budget_regs {
            used += c.reg_cost;
            out.push(c);
        }
    }
    out
}

/// Element type of a group's array (needed by the transformation).
pub fn group_elem_ty(usage: &BTreeMap<Ident, ArrayUsage>, group: &ReuseGroup) -> ScalarTy {
    usage.get(&group.array).map(|u| u.ty.elem).unwrap_or(ScalarTy::F32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_analysis::memspace::classify_arrays;
    use safara_analysis::reuse::find_reuse_groups;
    use safara_ir::parse_program;

    fn setup(src: &str) -> (Vec<ReuseGroup>, RegionInfo, BTreeMap<Ident, ArrayUsage>) {
        let p = parse_program(src).unwrap();
        let f = &p.functions[0];
        let region = f.regions()[0].clone();
        let info = RegionInfo::analyze(&region);
        let usage = classify_arrays(&f.params, &region);
        let groups = find_reuse_groups(&region, &info);
        (groups, info, usage)
    }

    const FIG5: &str = r#"
    void fig5(int jsize, int isize, float a[260][260], float b[260][260],
              float c[260], float d[260]) {
      #pragma acc kernels
      {
        #pragma acc loop gang vector
        for (int j = 1; j <= jsize; j++) {
          c[j] = b[j][0] + b[j][1];
          d[j] = c[j] * b[j][0];
          #pragma acc loop seq
          for (int i = 1; i <= isize; i++) {
            a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
          }
        }
      }
    }"#;

    #[test]
    fn uncoalesced_b_ranks_first() {
        // The paper's §II-A.2 argument: b is uncoalesced (higher latency)
        // so replacing b beats replacing a even though a has more refs.
        let (groups, info, usage) = setup(FIG5);
        let picked = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        assert!(!picked.is_empty());
        assert_eq!(picked[0].group.array.as_str(), "b");
        assert!(matches!(
            picked[0].class,
            AccessClass::GlobalUncoalesced | AccessClass::ReadOnlyUncoalesced
        ));
    }

    #[test]
    fn budget_limits_selection() {
        let (groups, info, usage) = setup(FIG5);
        let all = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let one = select_candidates(&groups, &info, &usage, 3, &SelectionConfig::default());
        assert!(one.len() < all.len());
        let zero = select_candidates(&groups, &info, &usage, 0, &SelectionConfig::default());
        assert!(zero.is_empty());
        // The constrained pick must still be the top-benefit group.
        assert_eq!(one[0].group.array, all[0].group.array);
    }

    #[test]
    fn count_only_model_changes_ranking() {
        let (groups, info, usage) = setup(FIG5);
        let latency_aware =
            select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let count_only = select_candidates(
            &groups,
            &info,
            &usage,
            255,
            &SelectionConfig { cost_model: CostModel::count_only(), ..Default::default() },
        );
        // Both select something; the orderings need not agree, but the
        // latency-aware one must put an uncoalesced group first.
        assert!(!latency_aware.is_empty() && !count_only.is_empty());
        assert!(matches!(
            latency_aware[0].class,
            AccessClass::GlobalUncoalesced | AccessClass::ReadOnlyUncoalesced
        ));
    }

    #[test]
    fn f64_groups_cost_double() {
        let src = r#"
        void f(int n, const double s[n], double a[n][100]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              #pragma acc loop seq
              for (int k = 0; k < 100; k++) {
                a[i][k] = a[i][k] + s[i];
              }
            }
          }
        }"#;
        let (groups, info, usage) = setup(src);
        let picked = select_candidates(&groups, &info, &usage, 255, &SelectionConfig::default());
        let s = picked.iter().find(|c| c.group.array.as_str() == "s").expect("s selected");
        assert_eq!(s.reg_cost, 2);
    }
}
