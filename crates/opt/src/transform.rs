//! The scalar-replacement rewrites.
//!
//! Given a [`ReuseGroup`] from `safara-analysis`, rewrite the region AST
//! so the group's memory references are served from scalar temporaries:
//!
//! * **Intra** — one temporary per reference class, loaded at the first
//!   access and written through on stores;
//! * **Invariant** — the temporary is loaded once *before* the carrying
//!   sequential loop;
//! * **Inter** — `D+1` rotating temporaries (`t0 … tD`), pre-loaded for
//!   the first iteration window and rotated at the bottom of the loop
//!   body — the paper's Fig. 6 shape. The loop (plus pre-loads) is
//!   wrapped in a trip-count guard so a zero-trip loop performs no loads.
//!
//! All rewrites are scope-aware: reads are only replaced at the same
//! sequential-loop nesting context the analysis grouped them in.

use safara_analysis::region::RegionInfo;
use safara_analysis::reuse::{same_subscripts, RefClass, ReuseGroup, ReuseKind};
use safara_ir::*;

/// Counter for generating unique temporary names within a region.
#[derive(Debug, Default)]
pub struct TempNamer {
    next: u32,
}

impl TempNamer {
    /// Produce a fresh `__sr<N>` name.
    pub fn fresh(&mut self) -> Ident {
        let id = Ident::new(format!("__sr{}", self.next));
        self.next += 1;
        id
    }
}

/// Apply one reuse group to a region body. Returns the number of
/// temporaries introduced (0 if the group's anchor could not be located,
/// which leaves the body unchanged).
///
/// `info` must be the same [`RegionInfo`] the reuse analysis consumed:
/// the transformation re-derives the analysis's sequential-loop instance
/// ids from it, so each group lands on exactly the loop instance it was
/// discovered in (several loops may share an induction-variable name —
/// and even identical subscripts — across a region's nests).
pub fn apply_group(
    body: &mut Vec<Stmt>,
    group: &ReuseGroup,
    elem_ty: ScalarTy,
    namer: &mut TempNamer,
    info: &RegionInfo,
) -> u32 {
    let mut counter = 0u32;
    match &group.kind {
        ReuseKind::Intra => {
            apply_intra(body, &group.classes[0], elem_ty, namer, None, info, &mut counter)
        }
        ReuseKind::Invariant { var } => apply_invariant(
            body,
            &group.classes[0],
            var,
            elem_ty,
            namer,
            info,
            &mut counter,
        ),
        ReuseKind::Inter { var, max_distance } => {
            apply_inter(body, group, var, *max_distance, elem_ty, namer, info, &mut counter)
        }
    }
}

/// Visit the next loop instance: returns `(pre-order id, is_sequential)`
/// and advances the cursor. Mirrors the reuse analysis exactly: loops are
/// numbered pre-order, and a loop is sequential when the matching
/// `RegionInfo` entry says so (never by variable name).
fn visit_loop(info: &RegionInfo, counter: &mut u32) -> (u32, bool) {
    let id = *counter;
    *counter += 1;
    let seq = info
        .loops
        .get(id as usize)
        .map(|l| l.mapped.is_none())
        .unwrap_or(true);
    (id, seq)
}

// ---------------------------------------------------------------- intra

/// Walk to the statement list whose sequential context matches the
/// class's, then rewrite in place.
#[allow(clippy::too_many_arguments)]
fn apply_intra(
    stmts: &mut Vec<Stmt>,
    class: &RefClass,
    elem_ty: ScalarTy,
    namer: &mut TempNamer,
    cur_id: Option<u32>,
    info: &RegionInfo,
    counter: &mut u32,
) -> u32 {
    if class.ctx_id == cur_id {
        // Does this list (not descending into loops) access the class?
        if let Some(first) = stmts.iter().position(|s| stmt_accesses(s, class, false)) {
            let tmp = namer.fresh();
            let init = if first_access_is_pure_write(&stmts[first], class) {
                None
            } else {
                Some(Expr::ArrayRef(class.r.clone()))
            };
            rewrite_same_ctx(stmts, class, &tmp);
            stmts.insert(first, Stmt::DeclScalar { name: tmp, ty: elem_ty, init });
            return 1;
        }
    }
    // Descend (numbering sequential loops exactly as the analysis does).
    for s in stmts.iter_mut() {
        let n = match s {
            Stmt::For(f) => {
                let (id, seq) = visit_loop(info, counter);
                let inner = if seq { Some(id) } else { cur_id };
                apply_intra(&mut f.body, class, elem_ty, namer, inner, info, counter)
            }
            Stmt::If { then_body, else_body, .. } => {
                let a = apply_intra(then_body, class, elem_ty, namer, cur_id, info, counter);
                if a > 0 {
                    a
                } else {
                    apply_intra(else_body, class, elem_ty, namer, cur_id, info, counter)
                }
            }
            Stmt::Block(b) => apply_intra(b, class, elem_ty, namer, cur_id, info, counter),
            _ => 0,
        };
        if n > 0 {
            return n;
        }
    }
    0
}

// ------------------------------------------------------------ invariant

#[allow(clippy::too_many_arguments)]
fn apply_invariant(
    stmts: &mut Vec<Stmt>,
    class: &RefClass,
    var: &Ident,
    elem_ty: ScalarTy,
    namer: &mut TempNamer,
    info: &RegionInfo,
    counter: &mut u32,
) -> u32 {
    // Find the loop *instance* the analysis grouped the class in (by id);
    // hoist the load before it.
    for i in 0..stmts.len() {
        let mut this_id: Option<u32> = None;
        if matches!(&stmts[i], Stmt::For(_)) {
            let (id, seq) = visit_loop(info, counter);
            if seq {
                this_id = Some(id);
            }
        }
        let found = match &mut stmts[i] {
            Stmt::For(f) if &f.var == var && this_id == class.ctx_id => {
                let tmp = namer.fresh();
                rewrite_same_ctx(&mut f.body, class, &tmp);
                Some(tmp)
            }
            _ => None,
        };
        if let Some(tmp) = found {
            stmts.insert(
                i,
                Stmt::DeclScalar {
                    name: tmp,
                    ty: elem_ty,
                    init: Some(Expr::ArrayRef(class.r.clone())),
                },
            );
            return 1;
        }
        // Recurse into structured statements.
        let n = match &mut stmts[i] {
            Stmt::For(f) => apply_invariant(&mut f.body, class, var, elem_ty, namer, info, counter),
            Stmt::If { then_body, else_body, .. } => {
                let a = apply_invariant(then_body, class, var, elem_ty, namer, info, counter);
                if a > 0 {
                    a
                } else {
                    apply_invariant(else_body, class, var, elem_ty, namer, info, counter)
                }
            }
            Stmt::Block(b) => apply_invariant(b, class, var, elem_ty, namer, info, counter),
            _ => 0,
        };
        if n > 0 {
            return n;
        }
    }
    0
}

// ---------------------------------------------------------------- inter

#[allow(clippy::too_many_arguments)]
fn apply_inter(
    stmts: &mut Vec<Stmt>,
    group: &ReuseGroup,
    var: &Ident,
    max_distance: u32,
    elem_ty: ScalarTy,
    namer: &mut TempNamer,
    info: &RegionInfo,
    counter: &mut u32,
) -> u32 {
    for i in 0..stmts.len() {
        let mut this_id: Option<u32> = None;
        if matches!(&stmts[i], Stmt::For(_)) {
            let (id, seq) = visit_loop(info, counter);
            if seq {
                this_id = Some(id);
            }
        }
        // The anchor is the exact loop instance the analysis grouped the
        // references in (by id); rotation further requires unit step.
        let here = match &stmts[i] {
            Stmt::For(f) => {
                &f.var == var && f.step == 1 && this_id == group.classes[0].ctx_id
            }
            _ => false,
        };
        if here {
            let Stmt::For(f) = stmts.remove(i) else { unreachable!() };
            let (guarded, temps) =
                build_rotated_loop(*f, group, var, max_distance, elem_ty, namer);
            stmts.insert(i, guarded);
            return temps;
        }
        let n = match &mut stmts[i] {
            Stmt::For(f) => {
                apply_inter(&mut f.body, group, var, max_distance, elem_ty, namer, info, counter)
            }
            Stmt::If { then_body, else_body, .. } => {
                let a = apply_inter(
                    then_body, group, var, max_distance, elem_ty, namer, info, counter,
                );
                if a > 0 {
                    a
                } else {
                    apply_inter(
                        else_body, group, var, max_distance, elem_ty, namer, info, counter,
                    )
                }
            }
            Stmt::Block(b) => {
                apply_inter(b, group, var, max_distance, elem_ty, namer, info, counter)
            }
            _ => 0,
        };
        if n > 0 {
            return n;
        }
    }
    0
}

/// Rewrite one sequential loop with rotating temporaries (Fig. 6).
fn build_rotated_loop(
    mut f: ForLoop,
    group: &ReuseGroup,
    var: &Ident,
    max_distance: u32,
    elem_ty: ScalarTy,
    namer: &mut TempNamer,
) -> (Stmt, u32) {
    let d = max_distance as usize;
    let temps: Vec<Ident> = (0..=d).map(|_| namer.fresh()).collect();
    let leader = &group.classes[0].r;

    // Replace each class's reads inside the loop body with its temp.
    for (class, dist) in group.classes.iter().zip(&group.distances) {
        let tmp = &temps[*dist as usize];
        replace_reads(&mut f.body, class, tmp);
    }

    // Fresh load of the leading edge at the top of the body:
    // t_D = leader with var := var + D.
    let lead_ref = shift_ref(leader, var, d as i64);
    f.body.insert(
        0,
        Stmt::Assign {
            lhs: LValue::Var(temps[d].clone()),
            op: AssignOp::Assign,
            rhs: Expr::ArrayRef(lead_ref),
        },
    );
    // Rotation at the bottom: t_j = t_{j+1}.
    for j in 0..d {
        f.body.push(Stmt::Assign {
            lhs: LValue::Var(temps[j].clone()),
            op: AssignOp::Assign,
            rhs: Expr::var(temps[j + 1].as_str()),
        });
    }

    // Pre-loads for the first window: t_j = leader with var := lo + j,
    // j in 0..D. Declare t_D uninitialized.
    let mut prologue: Vec<Stmt> = Vec::new();
    for (j, t) in temps.iter().enumerate() {
        let init = if j < d {
            Some(Expr::ArrayRef(shift_to(leader, var, &f.lo, j as i64)))
        } else {
            None
        };
        prologue.push(Stmt::DeclScalar { name: t.clone(), ty: elem_ty, init });
    }

    // Guard so a zero-trip loop performs no pre-loads:
    // if (lo CMP bound) { preloads; loop }.
    let cond = Expr::bin(
        match f.cmp {
            LoopCmp::Lt => BinOp::Lt,
            LoopCmp::Le => BinOp::Le,
            LoopCmp::Gt => BinOp::Gt,
            LoopCmp::Ge => BinOp::Ge,
        },
        f.lo.clone(),
        f.bound.clone(),
    );
    let mut guarded_body = prologue;
    guarded_body.push(Stmt::For(Box::new(f)));
    (
        Stmt::If { cond, then_body: guarded_body, else_body: Vec::new() },
        (d + 1) as u32,
    )
}

/// The leader reference with `var := var + delta` in every subscript.
fn shift_ref(r: &ArrayRef, var: &Ident, delta: i64) -> ArrayRef {
    let mut out = r.clone();
    for ix in &mut out.indices {
        let e = std::mem::replace(ix, Expr::IntLit(0));
        *ix = visit::map_expr(e, &mut |e| match e {
            Expr::Var(v) if &v == var => {
                Expr::bin(BinOp::Add, Expr::Var(v), Expr::IntLit(delta))
            }
            other => other,
        });
    }
    out
}

/// The leader reference with `var := lo + j`.
fn shift_to(r: &ArrayRef, var: &Ident, lo: &Expr, j: i64) -> ArrayRef {
    let mut out = r.clone();
    for ix in &mut out.indices {
        let e = std::mem::replace(ix, Expr::IntLit(0));
        *ix = visit::map_expr(e, &mut |e| match e {
            Expr::Var(v) if &v == var => {
                Expr::bin(BinOp::Add, lo.clone(), Expr::IntLit(j))
            }
            other => other,
        });
    }
    out
}

// ------------------------------------------------------------- plumbing

/// True if the statement (not descending into nested loops) reads or
/// writes the class. With `reads_only`, writes are ignored.
fn stmt_accesses(s: &Stmt, class: &RefClass, reads_only: bool) -> bool {
    let matches_ref =
        |r: &ArrayRef| r.array == class.r.array && same_subscripts(r, &class.r);
    let mut found = false;
    let mut check_expr = |e: &Expr| {
        visit::walk_expr(e, &mut |e| {
            if let Expr::ArrayRef(r) = e {
                if matches_ref(r) {
                    found = true;
                }
            }
        });
    };
    match s {
        Stmt::DeclScalar { init, .. } => {
            if let Some(e) = init {
                check_expr(e);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            check_expr(rhs);
            if let LValue::ArrayRef(r) = lhs {
                for ix in &r.indices {
                    check_expr(ix);
                }
                if !reads_only && matches_ref(r) {
                    found = true;
                }
            }
        }
        Stmt::If { cond, then_body, else_body } => {
            check_expr(cond);
            found |= then_body.iter().any(|s| stmt_accesses(s, class, reads_only))
                || else_body.iter().any(|s| stmt_accesses(s, class, reads_only));
        }
        Stmt::Block(b) => {
            found |= b.iter().any(|s| stmt_accesses(s, class, reads_only));
        }
        Stmt::For(_) | Stmt::Region(_) => {}
    }
    found
}

fn first_access_is_pure_write(s: &Stmt, class: &RefClass) -> bool {
    match s {
        Stmt::Assign { lhs: LValue::ArrayRef(r), op: AssignOp::Assign, rhs } => {
            if !(r.array == class.r.array && same_subscripts(r, &class.r)) {
                return false;
            }
            // A read of the class in the RHS (or subscripts) happens first.
            let mut reads = false;
            visit::walk_expr(rhs, &mut |e| {
                if let Expr::ArrayRef(q) = e {
                    if q.array == class.r.array && same_subscripts(q, &class.r) {
                        reads = true;
                    }
                }
            });
            !reads
        }
        _ => false,
    }
}

/// Replace reads of the class with the temp, and turn writes into
/// write-throughs, within the same sequential context (not descending
/// into nested loops — those have different contexts).
fn rewrite_same_ctx(stmts: &mut Vec<Stmt>, class: &RefClass, tmp: &Ident) {
    let mut i = 0;
    while i < stmts.len() {
        let mut insert_after: Option<Stmt> = None;
        match &mut stmts[i] {
            Stmt::DeclScalar { init, .. } => {
                if let Some(e) = init.take() {
                    *init = Some(replace_in_expr(e, class, tmp));
                }
            }
            Stmt::Assign { lhs, op, rhs } => {
                let r = std::mem::replace(rhs, Expr::IntLit(0));
                *rhs = replace_in_expr(r, class, tmp);
                if let LValue::ArrayRef(ar) = lhs {
                    for ix in &mut ar.indices {
                        let e = std::mem::replace(ix, Expr::IntLit(0));
                        *ix = replace_in_expr(e, class, tmp);
                    }
                    if ar.array == class.r.array && same_subscripts(ar, &class.r) {
                        // Write-through: tmp op= rhs; array = tmp.
                        let store = Stmt::Assign {
                            lhs: LValue::ArrayRef(ar.clone()),
                            op: AssignOp::Assign,
                            rhs: Expr::var(tmp.as_str()),
                        };
                        *lhs = LValue::Var(tmp.clone());
                        let _ = op; // op is preserved on the temp update
                        insert_after = Some(store);
                    }
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let c = std::mem::replace(cond, Expr::IntLit(0));
                *cond = replace_in_expr(c, class, tmp);
                rewrite_same_ctx(then_body, class, tmp);
                rewrite_same_ctx(else_body, class, tmp);
            }
            Stmt::Block(b) => rewrite_same_ctx(b, class, tmp),
            Stmt::For(_) | Stmt::Region(_) => {}
        }
        if let Some(st) = insert_after {
            stmts.insert(i + 1, st);
            i += 1;
        }
        i += 1;
    }
}

/// Replace only *reads* (no write-through handling) — used inside
/// inter-iteration loop bodies where group classes are read-only by
/// construction.
fn replace_reads(stmts: &mut Vec<Stmt>, class: &RefClass, tmp: &Ident) {
    for s in stmts {
        match s {
            Stmt::DeclScalar { init, .. } => {
                if let Some(e) = init.take() {
                    *init = Some(replace_in_expr(e, class, tmp));
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let r = std::mem::replace(rhs, Expr::IntLit(0));
                *rhs = replace_in_expr(r, class, tmp);
                if let LValue::ArrayRef(ar) = lhs {
                    for ix in &mut ar.indices {
                        let e = std::mem::replace(ix, Expr::IntLit(0));
                        *ix = replace_in_expr(e, class, tmp);
                    }
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let c = std::mem::replace(cond, Expr::IntLit(0));
                *cond = replace_in_expr(c, class, tmp);
                replace_reads(then_body, class, tmp);
                replace_reads(else_body, class, tmp);
            }
            Stmt::Block(b) => replace_reads(b, class, tmp),
            Stmt::For(f) => replace_reads(&mut f.body, class, tmp),
            Stmt::Region(_) => {}
        }
    }
}

fn replace_in_expr(e: Expr, class: &RefClass, tmp: &Ident) -> Expr {
    visit::map_expr(e, &mut |e| match e {
        Expr::ArrayRef(r)
            if r.array == class.r.array && same_subscripts(&r, &class.r) =>
        {
            Expr::Var(tmp.clone())
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safara_analysis::region::RegionInfo;
    use safara_analysis::reuse::find_reuse_groups;
    use safara_ir::printer::print_function;
    use safara_ir::{parse_program, Program};

    fn transformed(src: &str) -> (Program, String) {
        let mut p = parse_program(src).unwrap();
        let f = &mut p.functions[0];
        // Apply every group the analysis finds.
        let mut namer = TempNamer::default();
        let regions_snapshot: Vec<_> = f.regions().into_iter().cloned().collect();
        // Locate the region in the body (assume a single top-level region).
        for s in &mut f.body {
            if let Stmt::Region(r) = s {
                let info = RegionInfo::analyze(&regions_snapshot[0]);
                let groups = find_reuse_groups(&regions_snapshot[0], &info);
                for g in &groups {
                    let elem = match p_elem(&regions_snapshot[0], &g.array) {
                        Some(t) => t,
                        None => ScalarTy::F32,
                    };
                    apply_group(&mut r.body, g, elem, &mut namer, &info);
                }
            }
        }
        let txt = print_function(&p.functions[0]);
        // Must still parse and type-check.
        parse_program(&txt)
            .unwrap_or_else(|e| panic!("transformed source invalid: {e}\n{txt}"));
        (p, txt)
    }

    fn p_elem(_region: &OffloadRegion, _array: &Ident) -> Option<ScalarTy> {
        None // tests use f32 arrays throughout
    }

    const FIG5: &str = r#"
    void fig5(int jsize, int isize, float a[260][260], float b[260][260],
              float c[260], float d[260]) {
      #pragma acc kernels
      {
        #pragma acc loop gang vector
        for (int j = 1; j <= jsize; j++) {
          c[j] = b[j][0] + b[j][1];
          d[j] = c[j] * b[j][0];
          #pragma acc loop seq
          for (int i = 1; i <= isize; i++) {
            a[i][j] += a[i - 1][j] + b[j][i - 1] + a[i + 1][j] + b[j][i + 1];
          }
        }
      }
    }"#;

    #[test]
    fn fig5_gets_rotating_temporaries() {
        let (_, txt) = transformed(FIG5);
        // The inter group on b (distance 2) introduces three temps and a
        // rotation, mirroring the paper's Fig. 6.
        assert!(txt.contains("__sr"), "{txt}");
        // A fresh leading-edge load of b[j][i+1] (leader b[j][i-1]
        // shifted by +2; printed as `i + 2 - 1`).
        assert!(
            txt.contains("b[j][i + 2 - 1]") || txt.contains("b[j][i + 1]"),
            "leading edge load missing:\n{txt}"
        );
        // Rotation assignments temp = temp.
        let rot = txt
            .lines()
            .filter(|l| {
                let l = l.trim();
                l.starts_with("__sr") && l.contains("= __sr") && !l.contains("[")
            })
            .count();
        assert!(rot >= 2, "expected rotation assignments:\n{txt}");
    }

    #[test]
    fn fig5_intra_b_j0_loaded_once() {
        let (_, txt) = transformed(FIG5);
        // b[j][0] was read twice; after SR it is loaded exactly once.
        let occurrences = txt.matches("b[j][0]").count();
        assert_eq!(occurrences, 1, "b[j][0] should remain only in the temp init:\n{txt}");
    }

    #[test]
    fn parallel_loop_not_rotated() {
        let src = r#"
        void fig3(int n, float a[1026], float b[1026]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 1; i <= n; i++) {
              a[i] = (b[i] + b[i + 1]) / 2.0;
            }
          }
        }"#;
        let (_, txt) = transformed(src);
        // No temporaries: nothing is replaceable without sequentializing.
        assert!(!txt.contains("__sr"), "{txt}");
    }

    #[test]
    fn invariant_hoisted_before_loop() {
        let src = r#"
        void f(int n, const float s[n], float a[n][100]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              #pragma acc loop seq
              for (int k = 0; k < 100; k++) {
                a[i][k] = a[i][k] + s[i];
              }
            }
          }
        }"#;
        let (_, txt) = transformed(src);
        // s[i] appears exactly once (the hoisted init).
        assert_eq!(txt.matches("s[i]").count(), 1, "{txt}");
        // The temp decl comes before the k loop.
        let decl_pos = txt.find("__sr").unwrap();
        let loop_pos = txt.find("for (int k").unwrap();
        assert!(decl_pos < loop_pos, "{txt}");
    }

    #[test]
    fn rmw_write_through_keeps_store() {
        let src = r#"
        void f(int n, float a[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              a[i] += 1.0;
              a[i] += 2.0;
            }
          }
        }"#;
        let (_, txt) = transformed(src);
        // The temp accumulates; stores to a[i] remain (write-through).
        assert!(txt.contains("__sr0 += 1.0"), "{txt}");
        assert!(txt.contains("a[i] = __sr0"), "{txt}");
        // Only the initial load of a[i] remains on a RHS.
        assert_eq!(txt.matches("= a[i];").count(), 1, "{txt}");
    }

    #[test]
    fn zero_trip_guard_wraps_rotated_loop() {
        let src = r#"
        void f(int n, int m, float a[n][1030], const float b[n][1030]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              #pragma acc loop seq
              for (int k = 1; k < m; k++) {
                a[i][k] = b[i][k - 1] + b[i][k + 1];
              }
            }
          }
        }"#;
        let (_, txt) = transformed(src);
        assert!(txt.contains("if (1 < m)"), "guard missing:\n{txt}");
    }

    #[test]
    fn pure_write_class_gets_no_bogus_load() {
        let src = r#"
        void f(int n, float a[n], const float b[n]) {
          #pragma acc kernels
          {
            #pragma acc loop gang vector
            for (int i = 0; i < n; i++) {
              a[i] = b[i];
              a[i] = a[i] * 2.0;
            }
          }
        }"#;
        let (_, txt) = transformed(src);
        // First access to a[i] is a pure write: the temp must be declared
        // WITHOUT an initializing load of a[i].
        let decl_line = txt
            .lines()
            .find(|l| l.trim_start().starts_with("float __sr"))
            .unwrap_or_else(|| panic!("no temp declared:\n{txt}"));
        assert!(!decl_line.contains("a[i]"), "bogus load: {decl_line}\n{txt}");
    }
}
