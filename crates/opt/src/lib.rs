//! # safara-opt — scalar replacement: Carr–Kennedy and SAFARA
//!
//! The paper's contribution is implemented here as source-to-source
//! transformations over offload-region ASTs (the same level OpenUH works
//! at — compare Fig. 5/Fig. 6 in the paper):
//!
//! * [`transform`] — applies a set of reuse groups to a region:
//!   intra-iteration temporaries, loop-invariant hoisting, and
//!   inter-iteration rotating temporaries (Fig. 6's `b0/b1/b2` pattern);
//! * [`select`] — candidate selection under a register budget, ranked by
//!   the cost model `count × latency` (§III-B.3), with a count-only
//!   variant for the Carr–Kennedy ablation;
//! * [`strategy`] — the two end-to-end strategies:
//!   [`strategy::safara_pass`] (intra/invariant everywhere +
//!   inter-iteration only on sequential loops) and
//!   [`strategy::carr_kennedy_pass`] (classical behaviour: inter-iteration
//!   reuse is harvested even on parallelized loops, which then **must be
//!   sequentialized** — the paper's Fig. 3 → Fig. 4 pitfall, reproduced
//!   faithfully so its cost can be measured);
//! * [`egraph`] — an equality-saturation phase run *ahead* of scalar
//!   replacement: kernel expressions are hash-consed into an e-graph,
//!   saturated with integer-ring rewrites (CSE, offset factoring,
//!   strength reduction, guarded 32-bit narrowing), and re-extracted
//!   by predicted register cost.

pub mod egraph;
pub mod select;
pub mod strategy;
pub mod transform;
pub mod unroll;

pub use egraph::{
    saturate_region, RegionSaturation, SaturateConfig, SaturateError, SaturateStats, StopReason,
};
pub use select::{select_candidates, OptGoal, SelectionConfig, ThroughputContext};
pub use strategy::{carr_kennedy_pass, safara_pass, safara_pass_with, SrOutcome};
pub use transform::apply_group;
pub use unroll::unroll_seq_loops;
