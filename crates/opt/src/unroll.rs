//! Sequential-loop unrolling — the paper's future-work extension.
//!
//! §VII: "In future work, we plan to combine other classical
//! optimizations like loop unrolling and memory vectorization with
//! SAFARA". Unrolling an innermost sequential loop by `U` turns
//! inter-iteration reuse into *straight-line* intra-iteration reuse
//! (e.g. `c[k]`/`c[k-1]` pairs across adjacent unrolled copies collapse
//! after SR and local CSE), at the cost of more instructions per
//! iteration.
//!
//! Transformation (upward unit-stride loops only):
//!
//! ```text
//! for (k = lo; k < bound; k++) body
//!   ⇒
//! int __trip = bound - lo;
//! int __main = lo + __trip / U * U;
//! for (k = lo; k < __main; k += U) { {body@k+0} … {body@k+U-1} }
//! for (k = __main; k < bound; k++) body        // remainder
//! ```
//!
//! Each unrolled copy is wrapped in its own block so local declarations
//! do not collide. Loops carrying `reduction` clauses or containing
//! nested loops are left alone (conservative).

use safara_analysis::region::RegionInfo;
use safara_ir::*;

/// Unroll every eligible innermost sequential loop of the region body by
/// `factor`. Returns the number of loops unrolled.
pub fn unroll_seq_loops(
    body: &mut Vec<Stmt>,
    factor: u32,
    info: &RegionInfo,
    namer: &mut crate::transform::TempNamer,
) -> u32 {
    if factor < 2 {
        return 0;
    }
    let mut counter = 0u32;
    walk(body, factor, info, namer, &mut counter)
}

fn walk(
    stmts: &mut Vec<Stmt>,
    factor: u32,
    info: &RegionInfo,
    namer: &mut crate::transform::TempNamer,
    loop_cursor: &mut u32,
) -> u32 {
    let mut done = 0u32;
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::For(f) => {
                let idx = *loop_cursor as usize;
                *loop_cursor += 1;
                let seq = info
                    .loops
                    .get(idx)
                    .map(|l| l.mapped.is_none())
                    .unwrap_or(true);
                // Recurse first (cursor must advance through the subtree).
                let inner = walk(&mut f.body, factor, info, namer, loop_cursor);
                done += inner;
                if seq && inner == 0 && eligible(f) {
                    let Stmt::For(f) = stmts.remove(i) else { unreachable!() };
                    let replacement = build_unrolled(*f, factor, namer);
                    let n = replacement.len();
                    for (off, s) in replacement.into_iter().enumerate() {
                        stmts.insert(i + off, s);
                    }
                    done += 1;
                    i += n;
                    continue;
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                done += walk(then_body, factor, info, namer, loop_cursor);
                done += walk(else_body, factor, info, namer, loop_cursor);
            }
            Stmt::Block(b) => done += walk(b, factor, info, namer, loop_cursor),
            _ => {}
        }
        i += 1;
    }
    done
}

/// Innermost (no nested loops), upward unit stride, no reductions.
fn eligible(f: &ForLoop) -> bool {
    f.step == 1
        && matches!(f.cmp, LoopCmp::Lt | LoopCmp::Le)
        && f.directive.as_ref().is_none_or(|d| d.reductions.is_empty() && d.seq)
        && !contains_loop(&f.body)
}

fn contains_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For(_) => true,
        Stmt::If { then_body, else_body, .. } => {
            contains_loop(then_body) || contains_loop(else_body)
        }
        Stmt::Block(b) => contains_loop(b),
        _ => false,
    })
}

fn build_unrolled(
    f: ForLoop,
    factor: u32,
    namer: &mut crate::transform::TempNamer,
) -> Vec<Stmt> {
    let u = factor as i64;
    let trip_name = Ident::new(format!("{}_trip", namer.fresh()));
    let main_name = Ident::new(format!("{}_main", namer.fresh()));
    // trip = bound - lo (+1 for <=).
    let mut trip = Expr::bin(BinOp::Sub, f.bound.clone(), f.lo.clone());
    if f.cmp == LoopCmp::Le {
        trip = Expr::bin(BinOp::Add, trip, Expr::IntLit(1));
    }
    let decl_trip =
        Stmt::DeclScalar { name: trip_name.clone(), ty: ScalarTy::I32, init: Some(trip) };
    // main = lo + trip / U * U.
    let main_val = Expr::bin(
        BinOp::Add,
        f.lo.clone(),
        Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Div, Expr::Var(trip_name), Expr::IntLit(u)),
            Expr::IntLit(u),
        ),
    );
    let decl_main =
        Stmt::DeclScalar { name: main_name.clone(), ty: ScalarTy::I32, init: Some(main_val) };

    // Unrolled main loop.
    let mut main_body = Vec::with_capacity(factor as usize);
    for j in 0..u {
        let copy: Vec<Stmt> = f
            .body
            .iter()
            .cloned()
            .map(|s| substitute_var(s, &f.var, j))
            .collect();
        main_body.push(Stmt::Block(copy));
    }
    let main_loop = Stmt::For(Box::new(ForLoop {
        var: f.var.clone(),
        declares_var: true,
        lo: f.lo.clone(),
        cmp: LoopCmp::Lt,
        bound: Expr::Var(main_name.clone()),
        step: u,
        directive: Some(LoopDirective::seq()),
        body: main_body,
        span: f.span,
    }));

    // Remainder loop.
    let remainder = Stmt::For(Box::new(ForLoop {
        var: f.var.clone(),
        declares_var: true,
        lo: Expr::Var(main_name),
        cmp: f.cmp,
        bound: f.bound.clone(),
        step: 1,
        directive: Some(LoopDirective::seq()),
        body: f.body,
        span: f.span,
    }));

    vec![decl_trip, decl_main, main_loop, remainder]
}

/// Clone a statement with `var := var + j` in every expression.
fn substitute_var(s: Stmt, var: &Ident, j: i64) -> Stmt {
    if j == 0 {
        return s;
    }
    let mut wrapped = vec![s];
    visit::map_exprs(&mut wrapped, &mut |e| match e {
        Expr::Var(v) if &v == var => {
            Expr::bin(BinOp::Add, Expr::Var(v), Expr::IntLit(j))
        }
        other => other,
    });
    wrapped.pop().expect("one statement in, one out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TempNamer;
    use safara_ir::parse_program;
    use safara_ir::printer::print_function;

    fn unrolled(src: &str, factor: u32) -> (u32, String) {
        let mut p = parse_program(src).unwrap();
        let mut namer = TempNamer::default();
        let mut count = 0;
        let snapshot: Vec<_> = p.functions[0].regions().into_iter().cloned().collect();
        for s in &mut p.functions[0].body {
            if let Stmt::Region(r) = s {
                let info = RegionInfo::analyze(&snapshot[0]);
                count = unroll_seq_loops(&mut r.body, factor, &info, &mut namer);
            }
        }
        let txt = print_function(&p.functions[0]);
        parse_program(&txt).unwrap_or_else(|e| panic!("invalid output: {e}\n{txt}"));
        (count, txt)
    }

    const SRC: &str = r#"
    void f(int n, int m, const float a[n][300], float b[n][300]) {
      #pragma acc kernels copyin(a) copy(b)
      {
        #pragma acc loop gang vector
        for (int i = 0; i < n; i++) {
          #pragma acc loop seq
          for (int k = 1; k < m; k++) {
            b[i][k] = a[i][k] + a[i][k - 1];
          }
        }
      }
    }"#;

    #[test]
    fn unrolls_innermost_seq_loop() {
        let (count, txt) = unrolled(SRC, 4);
        assert_eq!(count, 1);
        assert!(txt.contains("k += 4"), "{txt}");
        // Four shifted copies plus the remainder's original body.
        assert_eq!(txt.matches("b[i][k").count(), 5, "{txt}");
        assert!(txt.contains("_trip"), "{txt}");
    }

    #[test]
    fn factor_one_is_identity() {
        let (count, txt) = unrolled(SRC, 1);
        assert_eq!(count, 0);
        assert!(!txt.contains("_trip"));
    }

    #[test]
    fn parallel_loops_untouched() {
        let (_, txt) = unrolled(SRC, 2);
        assert!(txt.contains("gang vector"), "{txt}");
        // The parallel i loop must still step by 1.
        assert!(txt.contains("i++"), "{txt}");
    }

    #[test]
    fn reduction_loops_skipped() {
        let src = r#"
        void f(int n, const float a[n], float s) {
          #pragma acc kernels copyin(a)
          {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < n; i++) {
              #pragma acc loop seq reduction(+:s)
              for (int k = 0; k < 8; k++) { s += a[i]; }
            }
          }
        }"#;
        let (count, _) = unrolled(src, 4);
        assert_eq!(count, 0);
    }
}
