#!/usr/bin/env bash
# Tier-1 gate: offline release build, full test suite, and clippy with
# warnings as errors. No network access is required — the workspace has
# no external dependencies (SplitMix64 replaces `rand`; criterion and
# proptest are gated behind the off-by-default `heavy-tests` feature).
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== test (release) =="
cargo test --release --offline -q

if cargo clippy --version >/dev/null 2>&1; then
  echo "== clippy gpusim (-D warnings) =="
  # The simulator crate gates on clippy by itself: the superblock
  # engine's unsafe-free hot loops must stay lint-clean.
  cargo clippy -q --release --offline -p safara-gpusim --all-targets -- -D warnings
  echo "== clippy (-D warnings) =="
  cargo clippy -q --release --offline --workspace --all-targets -- -D warnings
else
  echo "== clippy not installed; skipping =="
fi

echo "== safara-serve stdin smoke =="
# Three requests through the real service binary: parse, queue, worker
# pool, pipeline, response — all via the wire protocol. Request 3 sets
# "trace":true and must come back with the pipeline span tree.
smoke_out="$(printf '%s\n' \
  '{"id":1,"op":"ping"}' \
  '{"id":2,"op":"run","source":"void dbl(int n, float x[n]) { #pragma acc kernels copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}},"return_arrays":true}' \
  '{"id":3,"op":"run","trace":true,"source":"void dbl(int n, float x[n]) { #pragma acc kernels copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}}}' \
  | ./target/release/safara-serve --stdin --workers 2)"
echo "$smoke_out"
echo "$smoke_out" | grep -q '"id":1,"status":"ok"'
echo "$smoke_out" | grep -q '"id":2,"status":"ok"'
# 2.0f * 8.0f = 16.0f -> bit pattern 0x41800000 = 1098907648
echo "$smoke_out" | grep -q '1098907648'
# The traced response carries a well-formed span tree: a "trace" array
# with every pipeline phase and duration fields.
traced_line="$(echo "$smoke_out" | grep '"id":3')"
echo "$traced_line" | grep -q '"status":"ok"'
echo "$traced_line" | grep -q '"trace":\['
for phase in parse sema analysis opt codegen regalloc sim; do
  echo "$traced_line" | grep -q "\"name\":\"$phase\"" \
    || { echo "traced smoke: phase $phase missing from span tree" >&2; exit 1; }
done
echo "$traced_line" | grep -q '"dur_us":'
echo "$traced_line" | grep -q '"start_us":'

echo "== superblock engine smoke =="
# The same iterative kernel through the decoded engine and through the
# superblock engine (forced via SAFARA_ENGINE): the response lines must
# be byte-identical — outputs, stats-derived cycles, everything.
sb_req='{"id":4,"op":"run","source":"void grind(int n, float x[n]) { #pragma acc kernels copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { #pragma acc loop seq\n for (int k = 0; k < 500; k++) { x[i] = x[i] * 1.0001f + 0.5f; } } } }","entry":"grind","profile":"safara_only","scalars":{"n":64},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8]}},"return_arrays":true}'
dec_smoke="$(printf '%s\n' "$sb_req" | SAFARA_ENGINE=decoded ./target/release/safara-serve --stdin --workers 1)"
sb_smoke="$(printf '%s\n' "$sb_req" | SAFARA_ENGINE=superblock ./target/release/safara-serve --stdin --workers 1)"
echo "$sb_smoke" | grep -q '"id":4,"status":"ok"' \
  || { echo "superblock smoke: run failed: $sb_smoke" >&2; exit 1; }
[ "$dec_smoke" = "$sb_smoke" ] \
  || { echo "superblock smoke: decoded and superblock responses differ" >&2; exit 1; }

echo "== block-parallel smoke (sim_threads=2 vs serial) =="
# The same iterative kernel once serially and once with the block-level
# worker pool (forced via SAFARA_SIM_THREADS): the response lines must
# be byte-identical — the deterministic-merge contract at the wire
# level. A per-request override ("sim_threads":"2") against a serial
# server must match too.
serial_smoke="$(printf '%s\n' "$sb_req" | SAFARA_SIM_THREADS=1 ./target/release/safara-serve --stdin --workers 1)"
par_smoke="$(printf '%s\n' "$sb_req" | SAFARA_SIM_THREADS=2 ./target/release/safara-serve --stdin --workers 1)"
echo "$par_smoke" | grep -q '"id":4,"status":"ok"' \
  || { echo "parallel smoke: run failed: $par_smoke" >&2; exit 1; }
[ "$serial_smoke" = "$par_smoke" ] \
  || { echo "parallel smoke: serial and sim_threads=2 responses differ" >&2; exit 1; }
par_req="$(printf '%s' "$sb_req" | sed 's/"return_arrays":true/"return_arrays":true,"sim_threads":"2"/')"
par_wire_smoke="$(printf '%s\n' "$par_req" | SAFARA_SIM_THREADS=1 ./target/release/safara-serve --stdin --workers 1)"
[ "$serial_smoke" = "$par_wire_smoke" ] \
  || { echo "parallel smoke: per-request sim_threads override response differs" >&2; exit 1; }

echo "== launch_bounds clause smoke (end-to-end) =="
# A kernel carrying a `launch_bounds(256, 4)` register-budget contract
# through the wire: the run must succeed with correct outputs, and an
# out-of-range contract (2048 threads on a 1024-thread device) must
# come back as a typed, non-retryable `launch_bounds` error.
lb_out="$(printf '%s\n' \
  '{"id":5,"v":2,"op":"run","source":"void dbl(int n, float x[n]) { #pragma acc kernels launch_bounds(256, 4) copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}},"return_arrays":true}' \
  '{"id":6,"v":2,"op":"run","source":"void dbl(int n, float x[n]) { #pragma acc kernels launch_bounds(2048) copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}}}' \
  | ./target/release/safara-serve --stdin --workers 1)"
echo "$lb_out"
echo "$lb_out" | grep -q '"id":5,"status":"ok"' \
  || { echo "launch_bounds smoke: bounded run failed" >&2; exit 1; }
echo "$lb_out" | grep '"id":5' | grep -q '1098907648' \
  || { echo "launch_bounds smoke: wrong output under launch_bounds" >&2; exit 1; }
lb_err="$(echo "$lb_out" | grep '"id":6')"
echo "$lb_err" | grep -q '"status":"error"' \
  || { echo "launch_bounds smoke: out-of-range bounds did not error" >&2; exit 1; }
echo "$lb_err" | grep -q '"code":"launch_bounds"' \
  || { echo "launch_bounds smoke: expected typed launch_bounds code: $lb_err" >&2; exit 1; }
echo "$lb_err" | grep -q '"retryable":false' \
  || { echo "launch_bounds smoke: launch_bounds error must not be retryable" >&2; exit 1; }

echo "== equality-saturation smoke (profile safara_saturated) =="
# The same kernel through the wire under the default (greedy) profile
# and under `safara_saturated` (the e-graph phase ahead of SAFARA): both
# must succeed with bitwise-identical array payloads — saturation only
# rewrites in the integer ring, so outputs can never move.
sat_req() {
  printf '{"id":%d,"op":"run","source":"void quad(int n, float x[n]) { #pragma acc kernels copy(x)\\n { #pragma acc loop gang vector\\n for (int i = 0; i < n; i++) { x[i * 4 / 4] = x[(i + i) / 2] * 2.0f; } } }","entry":"quad","profile":"%s","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}},"return_arrays":true}' \
    "$1" "$2"
}
sat_out="$(printf '%s\n' "$(sat_req 7 safara_only)" "$(sat_req 8 safara_saturated)" \
  | ./target/release/safara-serve --stdin --workers 1)"
echo "$sat_out"
echo "$sat_out" | grep -q '"id":7,"status":"ok"' \
  || { echo "saturate smoke: greedy run failed" >&2; exit 1; }
echo "$sat_out" | grep -q '"id":8,"status":"ok"' \
  || { echo "saturate smoke: saturated profile failed to resolve or run" >&2; exit 1; }
sat_uniq="$(echo "$sat_out" | grep -E '"id":[78]' | sed 's/"id":[78]//;s/"profile":"[^"]*"//' | sort -u | wc -l)"
[ "$sat_uniq" = "1" ] \
  || { echo "saturate smoke: greedy and saturated payloads differ" >&2; exit 1; }

echo "== default-off byte-diff gate (results/*.txt untouched) =="
# The saturation knob defaults to off; every checked-in results file
# must be byte-identical to HEAD in the working tree (a regenerated
# artifact would show up here as a diff).
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  git diff --exit-code -- results/ \
    || { echo "byte-diff gate: results/ artifacts changed" >&2; exit 1; }
else
  echo "(not a git checkout; skipping)"
fi

echo "== clippy safara-opt (-D warnings) =="
# The e-graph module gates on clippy by itself: rewrite/extraction loops
# must stay lint-clean.
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy -q --release --offline -p safara-opt --all-targets -- -D warnings
else
  echo "== clippy not installed; skipping =="
fi

echo "== protocol v1 compat =="
cargo test --release --offline -q -p safara-server --test v1_compat

echo "== chaos smoke (seeded fault injection + retry) =="
# Two identical v2 run requests through a server whose first simulation
# is forced to fail: request 1 must come back as a structured,
# retryable `sim` error, and the identical retry (request 2) must
# succeed — the wire-level proof of the retryable-error contract.
# `--no-coalesce` models the real client, which retries only *after*
# seeing the error: the stdin transport submits both lines up front, so
# with single-flight on the "retry" would race into parking as a waiter
# and (by design) inherit the leader's verdict.
chaos_out="$(printf '%s\n' \
  '{"id":1,"v":2,"op":"run","source":"void dbl(int n, float x[n]) { #pragma acc kernels copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}}}' \
  '{"id":2,"v":2,"op":"run","source":"void dbl(int n, float x[n]) { #pragma acc kernels copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}}}' \
  | ./target/release/safara-serve --stdin --workers 1 --no-coalesce --fault sim:fail:1 --fault-seed 1)"
echo "$chaos_out"
faulted_line="$(echo "$chaos_out" | grep '"id":1')"
echo "$faulted_line" | grep -q '"status":"error"'
echo "$faulted_line" | grep -q '"code":"sim"'
echo "$faulted_line" | grep -q '"retryable":true'
echo "$chaos_out" | grep -q '"id":2,.*"status":"ok"'

echo "== coalescing stampede smoke (stdin) =="
# One worker held by a 200 ms sleep, then four identical runs submitted
# while it sleeps: one leader plus three coalesced waiters. The stdin
# transport submits every line before draining, and the trailing stats
# op is answered inline after all submissions — so its `coalesced`
# counter already reflects the parked duplicates.
dbl_src='void dbl(int n, float x[n]) { #pragma acc kernels copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }'
# stamp_req ID [DATA] — a dbl run request; DATA defaults to the shared
# ramp so identical-content duplicates coalesce.
stamp_req() {
  printf '{"id":%d,"op":"run","source":"%s","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[%s]}},"return_arrays":true}' \
    "$1" "$dbl_src" "${2:-1,2,3,4,5,6,7,8}"
}
stamp_out="$(printf '%s\n' \
  '{"id":10,"op":"sleep","ms":200}' \
  "$(stamp_req 11)" "$(stamp_req 12)" "$(stamp_req 13)" "$(stamp_req 14)" \
  '{"id":15,"op":"stats"}' \
  | ./target/release/safara-serve --stdin --workers 1)"
for id in 11 12 13 14; do
  echo "$stamp_out" | grep -q "\"id\":$id,\"status\":\"ok\"" \
    || { echo "stampede smoke: run $id failed" >&2; exit 1; }
done
# All four responses must be byte-identical once the per-waiter id is
# stripped — the fan-out serves one leader result to everyone.
bodies="$(echo "$stamp_out" | grep -cE '"id":1[1-4]')"
uniq_bodies="$(echo "$stamp_out" | grep -E '"id":1[1-4]' | sed 's/"id":1[1-4]//' | sort -u | wc -l)"
[ "$bodies" = "4" ] && [ "$uniq_bodies" = "1" ] \
  || { echo "stampede smoke: fan-out responses differ ($bodies bodies, $uniq_bodies unique)" >&2; exit 1; }
echo "$stamp_out" | grep '"id":15' | grep -q '"coalesced":3' \
  || { echo "stampede smoke: expected coalesced:3 in stats: $stamp_out" >&2; exit 1; }

echo "== sharded scale-out smoke (2 shards, byte diff) =="
# Three distinct runs through a real 2-shard deployment via safara-send
# (which routes by content key), byte-diffed against the same requests
# through a single-process server. --shutdown tears the shards down.
shard_log="$(mktemp)"
./target/release/safara-serve --shards 2 --workers 1 > "$shard_log" &
shard_pid=$!
for _ in $(seq 1 100); do grep -q '^shards ' "$shard_log" 2>/dev/null && break; sleep 0.1; done
shard_addrs="$(grep '^shards ' "$shard_log" | cut -d' ' -f2-)"
[ -n "$shard_addrs" ] \
  || { echo "shard smoke: parent never printed shard addresses" >&2; kill "$shard_pid" 2>/dev/null; exit 1; }
# Distinct payloads → distinct content keys, so the consistent hash can
# spread them across both shards.
shard_reqs="$(printf '%s\n' \
  "$(stamp_req 21 '1,2,3,4,5,6,7,8')" \
  "$(stamp_req 22 '9,8,7,6,5,4,3,2')" \
  "$(stamp_req 23 '2,4,6,8,10,12,14,16')")"
sharded_out="$(printf '%s\n' "$shard_reqs" | ./target/release/safara-send --shards "$shard_addrs" --shutdown)"
single_out="$(printf '%s\n' "$shard_reqs" | ./target/release/safara-serve --stdin --workers 1)"
[ "$sharded_out" = "$single_out" ] \
  || { echo "shard smoke: sharded and single-process responses differ" >&2; exit 1; }
wait "$shard_pid" || { echo "shard smoke: shard parent exited nonzero" >&2; exit 1; }
rm -f "$shard_log"

echo "tier-1 OK"
