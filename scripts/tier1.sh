#!/usr/bin/env bash
# Tier-1 gate: offline release build, full test suite, and clippy with
# warnings as errors. No network access is required — the workspace has
# no external dependencies (SplitMix64 replaces `rand`; criterion and
# proptest are gated behind the off-by-default `heavy-tests` feature).
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== test (release) =="
cargo test --release --offline -q

echo "== clippy (-D warnings) =="
cargo clippy --release --offline --all-targets -- -D warnings

echo "== safara-serve stdin smoke =="
# One request through the real service binary: parse, queue, worker
# pool, pipeline, response — all via the wire protocol.
smoke_out="$(printf '%s\n' \
  '{"id":1,"op":"ping"}' \
  '{"id":2,"op":"run","source":"void dbl(int n, float x[n]) { #pragma acc kernels copy(x)\n { #pragma acc loop gang vector\n for (int i = 0; i < n; i++) { x[i] = x[i] * 2.0f; } } }","entry":"dbl","profile":"safara_only","scalars":{"n":8},"arrays":{"x":{"elem":"f32","data":[1,2,3,4,5,6,7,8]}},"return_arrays":true}' \
  | ./target/release/safara-serve --stdin --workers 2)"
echo "$smoke_out"
echo "$smoke_out" | grep -q '"id":1,"status":"ok"'
echo "$smoke_out" | grep -q '"id":2,"status":"ok"'
# 2.0f * 8.0f = 16.0f -> bit pattern 0x41800000 = 1098907648
echo "$smoke_out" | grep -q '1098907648'

echo "tier-1 OK"
