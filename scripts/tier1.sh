#!/usr/bin/env bash
# Tier-1 gate: offline release build, full test suite, and clippy with
# warnings as errors. No network access is required — the workspace has
# no external dependencies (SplitMix64 replaces `rand`; criterion and
# proptest are gated behind the off-by-default `heavy-tests` feature).
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== test (release) =="
cargo test --release --offline -q

echo "== clippy (-D warnings) =="
cargo clippy --release --offline --all-targets -- -D warnings

echo "tier-1 OK"
